"""Baseline load/save/split semantics (grandfathering workflow)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding
from repro.analysis.baseline import BaselineError


def _finding(path="a.py", line=1, rule="DET001", message="m"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert len(baseline) == 0
    new, grandfathered = baseline.split([_finding()])
    assert len(new) == 1 and grandfathered == []


def test_round_trip(tmp_path):
    findings = [_finding(line=1), _finding(line=9), _finding(rule="MUT001")]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    loaded = Baseline.load(path)
    assert len(loaded) == 3
    new, grandfathered = loaded.split(findings)
    assert new == [] and len(grandfathered) == 3


def test_line_drift_stays_grandfathered(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(line=10)]).save(path)
    # The same finding moved 50 lines down: still grandfathered.
    new, grandfathered = Baseline.load(path).split([_finding(line=60)])
    assert new == [] and len(grandfathered) == 1


def test_extra_occurrence_beyond_count_is_new():
    baseline = Baseline.from_findings([_finding(line=1)])
    findings = [_finding(line=1), _finding(line=2)]
    new, grandfathered = baseline.split(findings)
    assert len(grandfathered) == 1 and len(new) == 1
    assert new[0].line == 2  # earlier occurrences consume the allowance


def test_different_message_is_new():
    baseline = Baseline.from_findings([_finding(message="old")])
    new, _ = baseline.split([_finding(message="new")])
    assert len(new) == 1


def test_saved_file_is_stable_json(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(), _finding(line=2)]).save(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
    assert payload["findings"] == {"a.py::DET001::m": 2}
    assert payload["content_findings"] == {}  # no source hashes provided


def test_version1_baseline_still_loads(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(
        {"version": 1, "findings": {"a.py::DET001::m": 1}}
    ))
    loaded = Baseline.load(path)
    assert len(loaded) == 1
    new, grandfathered = loaded.split([_finding()])
    assert new == [] and len(grandfathered) == 1


def test_rename_keeps_grandfathered_findings(tmp_path):
    """The v1 rename hole: path-keyed counts resurrect on ``git mv``."""
    digest = "f" * 64
    baseline = Baseline.from_findings(
        [_finding(path="old.py")], content_hashes={"old.py": digest}
    )
    moved = [_finding(path="renamed.py")]
    # Same content at the new path: the content key grandfathers it…
    new, grandfathered = baseline.split(
        moved, content_hashes={"renamed.py": digest}
    )
    assert new == [] and len(grandfathered) == 1
    # …but changed content at the new path is a genuinely new finding.
    new, grandfathered = baseline.split(
        moved, content_hashes={"renamed.py": "0" * 64}
    )
    assert len(new) == 1 and grandfathered == []


def test_duplicated_file_cannot_double_spend_content_budget():
    digest = "f" * 64
    baseline = Baseline.from_findings(
        [_finding(path="a.py")], content_hashes={"a.py": digest}
    )
    findings = [_finding(path="a.py"), _finding(path="copy.py")]
    hashes = {"a.py": digest, "copy.py": digest}
    new, grandfathered = baseline.split(findings, content_hashes=hashes)
    # The path match consumes the paired content key: the copy is new.
    assert len(grandfathered) == 1 and len(new) == 1
    assert new[0].path == "copy.py"


@pytest.mark.parametrize("content", [
    "not json at all",
    '["a", "list"]',
    '{"no_findings_key": 1}',
    '{"findings": {"k": -1}}',
    '{"findings": {"k": "many"}}',
])
def test_malformed_baseline_raises(tmp_path, content):
    path = tmp_path / "baseline.json"
    path.write_text(content)
    with pytest.raises(BaselineError):
        Baseline.load(path)
