"""Baseline load/save/split semantics (grandfathering workflow)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding
from repro.analysis.baseline import BaselineError


def _finding(path="a.py", line=1, rule="DET001", message="m"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert len(baseline) == 0
    new, grandfathered = baseline.split([_finding()])
    assert len(new) == 1 and grandfathered == []


def test_round_trip(tmp_path):
    findings = [_finding(line=1), _finding(line=9), _finding(rule="MUT001")]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    loaded = Baseline.load(path)
    assert len(loaded) == 3
    new, grandfathered = loaded.split(findings)
    assert new == [] and len(grandfathered) == 3


def test_line_drift_stays_grandfathered(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(line=10)]).save(path)
    # The same finding moved 50 lines down: still grandfathered.
    new, grandfathered = Baseline.load(path).split([_finding(line=60)])
    assert new == [] and len(grandfathered) == 1


def test_extra_occurrence_beyond_count_is_new():
    baseline = Baseline.from_findings([_finding(line=1)])
    findings = [_finding(line=1), _finding(line=2)]
    new, grandfathered = baseline.split(findings)
    assert len(grandfathered) == 1 and len(new) == 1
    assert new[0].line == 2  # earlier occurrences consume the allowance


def test_different_message_is_new():
    baseline = Baseline.from_findings([_finding(message="old")])
    new, _ = baseline.split([_finding(message="new")])
    assert len(new) == 1


def test_saved_file_is_stable_json(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(), _finding(line=2)]).save(path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["findings"] == {"a.py::DET001::m": 2}


@pytest.mark.parametrize("content", [
    "not json at all",
    '["a", "list"]',
    '{"no_findings_key": 1}',
    '{"findings": {"k": -1}}',
    '{"findings": {"k": "many"}}',
])
def test_malformed_baseline_raises(tmp_path, content):
    path = tmp_path / "baseline.json"
    path.write_text(content)
    with pytest.raises(BaselineError):
        Baseline.load(path)
