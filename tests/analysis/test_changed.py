"""``repro lint --changed``: git-diff resolution and import closures.

Each test builds a throwaway git repository (so the analyzer's own
repo state never leaks in) and drives the resolver through real git
metadata; the no-git fallback is exercised in a plain directory.
"""

from __future__ import annotations

import subprocess

import pytest

from repro.analysis.changed import (
    changed_files,
    merge_base,
    resolve_changed_paths,
)
from repro.analysis.runner import LintConfig, lint_paths

PKG = {
    "pkg/__init__.py": "",
    "pkg/core.py": "def f():\n    return 1\n",
    "pkg/user.py": (
        "from pkg.core import f\n\n\ndef g():\n    return f() + 1\n"
    ),
    "pkg/island.py": "def z():\n    return 3\n",
}


def _git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True, capture_output=True, text=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
        },
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    for rel, source in PKG.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    _git(tmp_path, "init", "-q", "-b", "main")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_no_git_metadata_falls_back_to_none(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
    assert changed_files() is None
    assert resolve_changed_paths(["."]) is None


def test_clean_tree_changes_nothing(repo):
    assert changed_files(base="HEAD") == []
    assert resolve_changed_paths(["pkg"], base="HEAD") == []


def test_one_file_diff_selects_only_the_import_closure(repo):
    (repo / "pkg" / "core.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    assert changed_files(base="HEAD") == ["pkg/core.py"]
    selected = resolve_changed_paths(["pkg"], base="HEAD")
    names = [p.name for p in selected]
    # The change and its importer — never the untouched island module.
    assert "core.py" in names and "user.py" in names
    assert "island.py" not in names


def test_changed_run_agrees_with_the_full_run(repo):
    (repo / "pkg" / "core.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    config = LintConfig(scoped=False)
    full = lint_paths(["pkg"], config)
    scoped = lint_paths(resolve_changed_paths(["pkg"], base="HEAD"), config)
    assert [f.render() for f in scoped.findings] == [
        f.render() for f in full.findings
    ]
    assert scoped.files_checked < full.files_checked


def test_untracked_files_count_as_changed(repo):
    (repo / "pkg" / "fresh.py").write_text("def q():\n    return 9\n")
    assert changed_files(base="HEAD") == ["pkg/fresh.py"]


def test_deleted_files_are_excluded(repo):
    (repo / "pkg" / "island.py").unlink()
    assert changed_files(base="HEAD") == []


def test_unparseable_changed_file_still_selected(repo):
    (repo / "pkg" / "broken.py").write_text("def oops(:\n")
    selected = resolve_changed_paths(["pkg"], base="HEAD")
    assert [p.name for p in selected] == ["broken.py"]
    result = lint_paths(selected)
    assert any(f.rule == "PARSE" for f in result.findings)


def test_explicit_base_ref_wins(repo):
    (repo / "pkg" / "core.py").write_text("def f():\n    return 2\n")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "edit core")
    # Against HEAD the tree is clean; against the first commit the edit
    # shows up.
    assert changed_files(base="HEAD") == []
    assert changed_files(base="HEAD~1") == ["pkg/core.py"]
    assert merge_base("HEAD~1") is not None


def test_merge_base_auto_detection_survives_missing_refs(repo):
    # No upstream and no origin/* in this throwaway repo: detection
    # falls through to the local main ref rather than erroring.
    assert merge_base() is not None
