"""Runner plumbing: file discovery, rule selection, reporters."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, lint_paths
from repro.analysis.reporters import render_github, render_json, render_text
from repro.analysis.runner import (
    PARSE_ERROR_RULE,
    LintConfig,
    iter_python_files,
)

BAD_SOURCE = "import random\nx = random.random()\ny = random.randint(1, 6)\n"


def _tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("B = 2\n")
    (tmp_path / "pkg" / "a.py").write_text("A = 1\n")
    (tmp_path / "top.py").write_text(BAD_SOURCE)
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    return tmp_path


def test_iter_python_files_sorted_and_skips_cache_dirs(tmp_path):
    files = iter_python_files([_tree(tmp_path)])
    assert [f.name for f in files] == ["a.py", "b.py", "top.py"]
    assert files == sorted(files)


def test_iter_python_files_dedupes_overlapping_paths(tmp_path):
    root = _tree(tmp_path)
    files = iter_python_files([root, root / "pkg", root / "pkg" / "a.py"])
    assert len(files) == len({f.resolve() for f in files}) == 3


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "absent.py"])


def test_lint_paths_counts_files_and_findings(tmp_path):
    result = lint_paths([_tree(tmp_path)])
    assert result.files_checked == 3
    assert len(result.findings) == 2  # the two draws in top.py
    assert not result.ok


def test_select_restricts_rules(tmp_path):
    root = _tree(tmp_path)
    result = lint_paths([root], LintConfig(select=["MUT001"]))
    assert result.findings == [] and result.ok


def test_ignore_drops_rules(tmp_path):
    result = lint_paths([_tree(tmp_path)], LintConfig(ignore=["DET001"]))
    assert result.findings == []


def test_unknown_rule_id_rejected(tmp_path):
    with pytest.raises(ValueError, match="NOPE"):
        lint_paths([_tree(tmp_path)], LintConfig(select=["NOPE"]))


def test_baseline_grandfathers_known_findings(tmp_path):
    root = _tree(tmp_path)
    first = lint_paths([root])
    baseline = Baseline.from_findings(first.findings)
    second = lint_paths([root], LintConfig(baseline=baseline))
    assert second.ok
    assert len(second.grandfathered) == len(first.findings) == 2


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    result = lint_paths([path])
    assert len(result.findings) == 1
    assert result.findings[0].rule == PARSE_ERROR_RULE
    assert "does not parse" in result.findings[0].message


def test_text_reporter_mentions_baseline_and_summary(tmp_path):
    root = _tree(tmp_path)
    first = lint_paths([root])
    text = render_text(first)
    assert "2 finding(s)" in text and "3 files" in text
    assert "DET001" in text

    gated = lint_paths(
        [root], LintConfig(baseline=Baseline.from_findings(first.findings))
    )
    text = render_text(gated)
    assert "(baseline)" in text
    assert "0 finding(s)" in text


def test_json_reporter_round_trips(tmp_path):
    result = lint_paths([_tree(tmp_path)])
    payload = json.loads(render_json(result))
    assert payload["files_checked"] == 3
    assert payload["ok"] is False
    assert len(payload["findings"]) == 2
    first = payload["findings"][0]
    assert {"path", "line", "col", "rule", "message"} <= set(first)


def test_github_reporter_emits_error_annotations(tmp_path):
    result = lint_paths([_tree(tmp_path)])
    report = render_github(result)
    errors = [ln for ln in report.splitlines() if ln.startswith("::error ")]
    assert len(errors) == 2
    assert "file=" in errors[0] and "line=" in errors[0]
    assert "title=repro-lint DET001" in errors[0]
    assert report.splitlines()[-1].startswith("2 finding(s)")


def test_github_reporter_notices_grandfathered_and_escapes(tmp_path):
    root = _tree(tmp_path)
    first = lint_paths([root])
    gated = lint_paths(
        [root], LintConfig(baseline=Baseline.from_findings(first.findings))
    )
    report = render_github(gated)
    notices = [ln for ln in report.splitlines() if ln.startswith("::notice ")]
    assert len(notices) == 2 and all("(baseline)" in ln for ln in notices)
    assert not any(ln.startswith("::error ") for ln in report.splitlines())
    # Workflow-command data escaping: a message containing % or newlines
    # must not break the annotation line.
    from repro.analysis.reporters import _annotation_escape

    assert _annotation_escape("50% a\r\nb") == "50%25 a%0D%0Ab"
