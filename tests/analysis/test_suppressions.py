"""Line and file suppression comments (``# repro: noqa[...]``)."""

from __future__ import annotations

import pytest

from repro.analysis import get_rule
from repro.analysis.runner import lint_file
from repro.analysis.suppressions import Suppressions


def _write(tmp_path, source: str):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return path


def _det001(tmp_path, source: str):
    return lint_file(_write(tmp_path, source), [get_rule("DET001")], scoped=False)


BAD_LINE = "import random\nx = random.random()\n"


def test_unsuppressed_finding_fires(tmp_path):
    assert len(_det001(tmp_path, BAD_LINE)) == 1


def test_line_noqa_with_rule(tmp_path):
    src = "import random\nx = random.random()  # repro: noqa[DET001]\n"
    assert _det001(tmp_path, src) == []


def test_line_noqa_bare_suppresses_all_rules(tmp_path):
    src = "import random\nx = random.random()  # repro: noqa\n"
    assert _det001(tmp_path, src) == []


def test_line_noqa_other_rule_does_not_suppress(tmp_path):
    src = "import random\nx = random.random()  # repro: noqa[DET004]\n"
    assert len(_det001(tmp_path, src)) == 1


def test_line_noqa_multiple_rules(tmp_path):
    src = "import random\nx = random.random()  # repro: noqa[DET004, DET001]\n"
    assert _det001(tmp_path, src) == []


def test_line_noqa_on_other_line_does_not_suppress(tmp_path):
    src = "import random  # repro: noqa[DET001]\nx = random.random()\n"
    assert len(_det001(tmp_path, src)) == 1


def test_file_noqa_with_rule(tmp_path):
    src = "# repro: noqa-file[DET001]\nimport random\nx = random.random()\n"
    assert _det001(tmp_path, src) == []


def test_file_noqa_bare_suppresses_everything(tmp_path):
    src = "# repro: noqa-file\nimport random\nx = random.random()\n"
    assert _det001(tmp_path, src) == []


def test_file_noqa_scoped_to_other_rule_keeps_finding(tmp_path):
    src = "# repro: noqa-file[MUT001]\nimport random\nx = random.random()\n"
    assert len(_det001(tmp_path, src)) == 1


def test_malformed_empty_brackets_suppress_nothing(tmp_path):
    src = "import random\nx = random.random()  # repro: noqa[]\n"
    assert len(_det001(tmp_path, src)) == 1


@pytest.mark.parametrize("comment", [
    "# repro: noqa[DET001]",
    "#repro:noqa[DET001]",
    "#  repro:  noqa[DET001]",
])
def test_comment_spacing_variants(tmp_path, comment):
    src = f"import random\nx = random.random()  {comment}\n"
    assert _det001(tmp_path, src) == []


def test_plain_ruff_noqa_is_not_ours():
    sup = Suppressions("x = 1  # noqa: F401\n")
    assert sup.by_line == {}
    assert sup.file_wide == frozenset()
