"""ProjectContext unit tests: the whole-program first pass.

Covers module naming, re-export chains (including ``__all__`` and star
imports), import-cycle termination, call-graph resolution, and the
import-closure computation ``--changed`` relies on.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.base import ModuleContext
from repro.analysis.project import ProjectContext, module_name_for, walk_own


def _write_tree(root: Path, files: dict[str, str]) -> list[ModuleContext]:
    contexts = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for rel in sorted(files):
        path = root / rel
        contexts.append(ModuleContext(path, rel, path.read_text()))
    return contexts


def _project(root: Path, files: dict[str, str]) -> ProjectContext:
    return ProjectContext(_write_tree(root, files))


# ------------------------------------------------------------- naming


def test_module_name_walks_up_through_init_files(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    mod = tmp_path / "pkg" / "sub" / "leaf.py"
    mod.write_text("X = 1\n")
    assert module_name_for(mod) == "pkg.sub.leaf"
    assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"


def test_module_name_stops_at_non_package_dirs(tmp_path):
    (tmp_path / "loose").mkdir()  # no __init__.py
    mod = tmp_path / "loose" / "script.py"
    mod.write_text("X = 1\n")
    assert module_name_for(mod) == "script"


# ----------------------------------------------------------- walk_own


def test_walk_own_skips_nested_scopes():
    import ast

    tree = ast.parse(
        "def outer():\n"
        "    a = 1\n"
        "    def inner():\n"
        "        b = 2\n"
        "    c = [x for x in range(3)]\n"
    )
    outer = tree.body[0]
    names = {
        n.id for n in walk_own(outer)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
    }
    assert "a" in names and "c" in names
    assert "b" not in names  # inside the nested def


# ----------------------------------------------------- symbol lookup


def test_resolve_symbol_follows_reexport_chains(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "from pkg.api import helper\n",
        "pkg/api.py": "from pkg.impl import helper\n",
        "pkg/impl.py": "def helper():\n    return 1\n",
    })
    kind, info, local = project.resolve_symbol("pkg", "helper")
    assert kind == "function"
    assert info.name == "pkg.impl" and local == "helper"


def test_resolve_symbol_through_star_imports(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "from pkg.impl import *\n",
        "pkg/impl.py": "__all__ = ['helper']\ndef helper():\n    return 1\n",
    })
    resolved = project.resolve_symbol("pkg", "helper")
    assert resolved is not None and resolved[1].name == "pkg.impl"


def test_all_declaration_shapes_public_names(tmp_path):
    (ctx,) = _write_tree(tmp_path, {
        "mod.py": (
            "__all__ = ['yes']\n"
            "def yes():\n    pass\n"
            "def also_public_by_name():\n    pass\n"
            "def _private():\n    pass\n"
        ),
    })
    from repro.analysis.project import ModuleInfo

    info = ModuleInfo("mod", ctx)
    assert info.all_names == ["yes"]
    assert info.public_names() == {"yes"}
    assert "_private" not in info.public_names()


def test_import_cycle_terminates(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg.b import thing\n",
        "pkg/b.py": "from pkg.a import thing\n",
    })
    # Neither module defines `thing`: resolution must return None, not
    # recurse forever.
    assert project.resolve_symbol("pkg.a", "thing") is None
    graph = project.import_graph()
    assert graph["pkg.a"] == {"pkg.b"} and graph["pkg.b"] == {"pkg.a"}


# --------------------------------------------------------- call graph


def test_cross_module_callees_and_transitive_closure(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/low.py": "def base():\n    return 0\n",
        "pkg/mid.py": (
            "from pkg.low import base\n"
            "def step():\n    return base() + 1\n"
        ),
        "pkg/top.py": (
            "from pkg.mid import step\n"
            "def run():\n    return step()\n"
        ),
    })
    run = project.resolve_function("pkg.top", "run")
    direct = {f.ref for f in project.callees(run)}
    assert direct == {("pkg.mid", "step")}
    transitive = {f.ref for f in project.transitive_callees(run)}
    assert transitive == {("pkg.mid", "step"), ("pkg.low", "base")}


def test_calling_a_class_resolves_to_init(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/model.py": (
            "class Thing:\n"
            "    def __init__(self):\n        self.x = 1\n"
        ),
        "pkg/use.py": (
            "from pkg.model import Thing\n"
            "def make():\n    return Thing()\n"
        ),
    })
    make = project.resolve_function("pkg.use", "make")
    refs = {f.ref for f in project.callees(make)}
    assert ("pkg.model", "Thing.__init__") in refs


# ----------------------------------------------------- import closure


def test_import_closure_includes_importers_and_their_imports(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/core.py": "def f():\n    return 1\n",
        "pkg/user.py": (
            "from pkg.core import f\n"
            "from pkg.extra import g\n"
            "def h():\n    return f() + g()\n"
        ),
        "pkg/extra.py": "def g():\n    return 2\n",
        "pkg/unrelated.py": "def z():\n    return 3\n",
    })
    closure = project.import_closure(["pkg/core.py"])
    # The change, its importer, and the importer's other import — but
    # not the module nothing connects to.
    assert closure == {"pkg/core.py", "pkg/user.py", "pkg/extra.py"}


def test_import_closure_passes_unknown_paths_through(tmp_path):
    project = _project(tmp_path, {"solo.py": "X = 1\n"})
    closure = project.import_closure(["solo.py", "not/analyzed.py"])
    assert closure == {"solo.py", "not/analyzed.py"}
