"""DET001 negative fixture: all draws come from injected Random instances."""

import random


def jitter(rng: random.Random) -> float:
    return rng.random() * 2.0  # instance draw: attributable and replayable


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)  # constructing the injected instance is the fix


def sample(seed: int, items):
    rng = random.SystemRandom() if seed < 0 else random.Random(seed)
    return rng.choice(list(items))
