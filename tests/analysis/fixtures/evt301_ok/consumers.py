"""A complete table, plus a deliberate subset below the threshold."""

GROUPS = {
    "job_start": "lifecycle",
    "job_end": "lifecycle",
    "cache_hit": "cache",
    "cache_miss": "cache",
    "evict": "cache",
}

# A two-key mapping is a deliberate subset, not a schema mirror — the
# coverage threshold keeps EVT301 silent on it.
CACHE_ONLY = {
    "cache_hit": "hit",
    "cache_miss": "miss",
}
