"""Same five concrete kinds as the bad fixture."""


class Event:
    kind = "event"


class JobStart(Event):
    kind = "job_start"


class JobEnd(Event):
    kind = "job_end"


class CacheHit(Event):
    kind = "cache_hit"


class CacheMiss(Event):
    kind = "cache_miss"


class Evict(Event):
    kind = "evict"
