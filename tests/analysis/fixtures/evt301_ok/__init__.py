"""EVT301 negative: tables exactly mirroring the event schema."""
