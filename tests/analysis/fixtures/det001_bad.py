"""DET001 positive fixture: draws on the process-global random module."""

import random
import random as rnd
from random import randint, shuffle  # noqa: F401  (the import itself is the finding)


def jitter() -> float:
    return random.random() * 2.0  # global draw


def pick(items):
    return rnd.choice(items)  # aliased module, still the global RNG


def reseed() -> None:
    random.seed(42)  # reseeding the global RNG is also a draw-order hazard
