"""DET002 positive fixture: wall-clock reads in simulated-world code."""

import datetime
import time
from datetime import datetime as dt


def stamp() -> float:
    return time.time()


def measure() -> float:
    start = time.perf_counter()
    return time.perf_counter() - start


def today():
    return datetime.datetime.now(), dt.utcnow()
