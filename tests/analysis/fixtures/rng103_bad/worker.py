"""Worker entry reading a module-level RNG (forked state is shared)."""
import random

GEN = random.Random(7)


def run_cell(spec):
    return GEN.random() * spec
