"""Dispatch site handing the capturing entry to a process pool."""
from multiprocessing import Pool

from .worker import run_cell


def run_all(specs):
    with Pool() as pool:
        # RNG103: every forked worker replays GEN's inherited stream.
        return list(pool.imap_unordered(run_cell, specs))
