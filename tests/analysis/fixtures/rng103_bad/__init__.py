"""RNG103 positive: a module-level RNG captured into pool workers."""
