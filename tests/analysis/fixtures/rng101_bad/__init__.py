"""RNG101 positive: RNGs constructed with no replayable seed."""
