"""Three unseeded constructions, each drawing OS entropy."""
import random

import numpy as np
from numpy.random import default_rng

GEN = random.Random()          # RNG101: no seed expression
NP_GEN = default_rng()         # RNG101: numpy generator, unseeded
LEGACY = np.random.RandomState(None)  # RNG101: literal None is unseeded
