"""MUT001 positive fixture: mutable default arguments."""

from collections import OrderedDict


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def ordered(pairs=OrderedDict()):
    return pairs


def keyword_only(*, seen=set()):
    return seen
