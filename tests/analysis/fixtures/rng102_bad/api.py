"""Functions advertising rng= while their draws are unattributable."""
import random

from .noise import jitter


def sample(values, rng):
    # RNG102: the injected rng is ignored one call level down.
    return [jitter(v) for v in values]


def pick(items, rng):
    # RNG102: draws the global module directly despite taking rng=.
    return items[int(random.random() * len(items))]
