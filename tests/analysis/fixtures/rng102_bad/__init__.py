"""RNG102 positive: rng= functions leaking to the global random module."""
