"""Helper drawing from the process-global RNG (the hidden leak)."""
import random


def jitter(value):
    return value + random.random()
