"""DET002 negative fixture: simulated components take time from the engine."""

import time


def schedule(now: float, latency: float) -> float:
    # Simulated time is threaded in by the caller; no host clock here.
    return now + latency


def sleep_is_fine() -> None:
    time.sleep(0.0)  # not a clock *read*; still host-dependent but allowed
