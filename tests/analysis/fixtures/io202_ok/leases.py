"""Exactly-one-winner claim: the exclusive create loses races loudly."""
import json
import os
from pathlib import Path


class Leases:
    def __init__(self, root):
        self.leases_dir = Path(root) / "leases"

    def claim(self, fingerprint, worker):
        path = self.leases_dir / f"{fingerprint}.json"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps({"worker": worker}))
        return True
