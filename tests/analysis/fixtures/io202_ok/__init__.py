"""IO202 negative: lease claimed with O_CREAT | O_EXCL."""
