"""RNG102 negative: the rng parameter is threaded through every call."""
