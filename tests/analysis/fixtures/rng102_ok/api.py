"""rng= functions whose whole call chain draws from the injected rng."""
from .noise import jitter


def sample(values, rng):
    return [jitter(v, rng) for v in values]


def pick(items, rng):
    return items[int(rng.random() * len(items))]
