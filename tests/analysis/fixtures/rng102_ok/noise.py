"""Helper drawing only from the rng it is handed."""


def jitter(value, rng):
    return value + rng.random()
