"""DET003 negative fixture: explicit sorting or order-insensitive sinks."""

import heapq


def comprehension_sorted(sizes) -> list:
    return [s * 2 for s in sorted(set(sizes))]


def loop_sorted(ids) -> list:
    victims = []
    for bid in sorted({i for i in ids}):
        victims.append(bid)
    return victims


def heap_sorted(table: dict) -> list:
    heap: list = []
    for rdd_id, dist in sorted(table.items()):
        heapq.heappush(heap, (dist, rdd_id))
    return heap


def order_insensitive(ids) -> int:
    return sum(i for i in set(ids))  # sum() does not depend on order


def plain_view_loop(table: dict) -> float:
    total = 0.0
    for value in table.values():  # no ordering-sensitive sink in the body
        total += value
    return total
