"""Seeded twins of the bad fixture's constructions."""
import random

import numpy as np
from numpy.random import default_rng


def make_rngs(config):
    gen = random.Random(config.seed)
    np_gen = default_rng(config.seed)
    legacy = np.random.RandomState(seed=config.seed + 1)
    return gen, np_gen, legacy
