"""RNG101 negative: every RNG seeded from config-derived values."""
