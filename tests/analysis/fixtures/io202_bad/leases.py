"""A 'claim' that silently steals a concurrent claimant's lease."""
import json
from pathlib import Path


class Leases:
    def __init__(self, root):
        self.leases_dir = Path(root) / "leases"

    def claim(self, fingerprint, worker):
        path = self.leases_dir / f"{fingerprint}.json"
        # IO202: plain write_text truncates whoever claimed first.
        path.write_text(json.dumps({"worker": worker}))
        return True
