"""IO202 positive: lease claimed with a clobbering write."""
