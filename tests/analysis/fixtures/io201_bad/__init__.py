"""IO201 positive: truncating writes landing on final store paths."""
