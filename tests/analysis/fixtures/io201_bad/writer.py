"""Writers that clobber final paths readers may be mid-read on."""
import json

from .store import Store


def save(store: Store, fingerprint, payload):
    path = store.cell_path(fingerprint)
    path.write_text(json.dumps(payload))  # IO201: torn-file window


def save_index(store: Store, rows):
    with open(store.root / "index.json", "w") as fh:  # IO201
        json.dump(rows, fh)
