"""Same dispatch shape as the bad fixture; nothing is captured."""
from multiprocessing import Pool

from .worker import run_cell


def run_all(specs):
    with Pool() as pool:
        return list(pool.imap_unordered(run_cell, specs))
