"""Worker entry building a per-task RNG instead of sharing state."""
import random


def run_cell(spec):
    rng = random.Random(spec)
    return rng.random() * spec
