"""RNG103 negative: each task derives a fresh RNG from its own seed."""
