"""DET004 negative fixture: every listing is explicitly sorted."""

import glob
import os
from pathlib import Path


def first_profile(root: str) -> str:
    return sorted(os.listdir(root))[0]


def all_cells(root: str) -> list:
    return sorted(glob.glob(f"{root}/*.json"))


def walk(root: Path) -> list:
    return sorted(p.stem for p in root.glob("*.json"))
