"""MUT001 negative fixture: None defaults, built inside the function."""


def collect(item, bucket=None):
    bucket = bucket if bucket is not None else []
    bucket.append(item)
    return bucket


def immutable_defaults(name="x", factor=1.0, pair=(1, 2), flag=frozenset()):
    return name, factor, pair, flag
