"""IO201 negative: every final path is published via tmp + os.replace."""
