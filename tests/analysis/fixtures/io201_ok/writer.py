"""The sanctioned idiom: mkstemp sibling, then an atomic rename."""
import json
import os
import tempfile

from .store import Store


def atomic_write(path, text):
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent))
    with os.fdopen(fd, "w") as fh:
        fh.write(text)
    os.replace(tmp_name, path)


def save(store: Store, fingerprint, payload):
    atomic_write(store.cell_path(fingerprint), json.dumps(payload))


def save_index(store: Store, rows):
    atomic_write(store.root / "index.json", json.dumps(rows))
