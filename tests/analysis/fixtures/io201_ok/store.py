"""Same store shape as the bad fixture."""
from pathlib import Path


class Store:
    def __init__(self, root):
        self.root = Path(root)

    def cell_path(self, fingerprint):
        return self.root / f"{fingerprint}.json"
