"""EVT301 positive: handler tables drifted from the event schema."""
