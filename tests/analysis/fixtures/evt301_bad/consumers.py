"""Two drifted tables: one misses a kind, one handles a ghost."""

# EVT301: complete-looking pivot with a hole — 'evict' events silently
# fall out of this consumer.
GROUPS = {
    "job_start": "lifecycle",
    "job_end": "lifecycle",
    "cache_hit": "cache",
    "cache_miss": "cache",
}

# EVT301: handles 'purge', which no Event class declares (renamed or
# removed without updating this table).
STALE = {
    "job_start": 1,
    "job_end": 2,
    "cache_hit": 3,
    "cache_miss": 4,
    "evict": 5,
    "purge": 6,
}
