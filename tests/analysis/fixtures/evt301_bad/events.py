"""Five concrete event kinds under one family root."""


class Event:
    kind = "event"  # abstract placeholder, not an emitted kind


class JobStart(Event):
    kind = "job_start"


class JobEnd(Event):
    kind = "job_end"


class CacheHit(Event):
    kind = "cache_hit"


class CacheMiss(Event):
    kind = "cache_miss"


class Evict(Event):
    kind = "evict"
