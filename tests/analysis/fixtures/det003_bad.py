"""DET003 positive fixture: unordered iteration feeding ordered constructs."""

import heapq


def candidates_from_set(blocks: set) -> list:
    return [b for b in blocks if b]  # fine: plain parameter, type unknown


def comprehension_over_set(sizes) -> list:
    return [s * 2 for s in set(sizes)]  # set(...) builds an ordered list


def loop_appends(ids) -> list:
    victims = []
    for bid in {i for i in ids}:  # set comprehension feeds .append
        victims.append(bid)
    return victims


def heap_from_view(table: dict) -> list:
    heap: list = []
    for rdd_id, dist in table.items():  # dict view feeds a heap push
        heapq.heappush(heap, (dist, rdd_id))
    return heap


def materialized(ids) -> list:
    return list(set(ids))  # list() captures hash-salted order
