"""IO203 negative: the same read-merge-write under an os.mkdir guard."""
