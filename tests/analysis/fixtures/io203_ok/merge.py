"""Publishers serialized through a lock directory: no lost updates."""
import json
import os

from .atomicio import atomic_write
from .paths import registry_path


def read_registry(root):
    path = registry_path(root)
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return {}


def publish(root, entry):
    lock = root / ".registry.lock"
    os.mkdir(lock)  # mutual exclusion: losers raise FileExistsError
    try:
        data = read_registry(root)
        data[entry["id"]] = entry
        atomic_write(registry_path(root), json.dumps(data))
    finally:
        os.rmdir(lock)
