"""DET004 positive fixture: directory-listing order leaks into behaviour."""

import glob
import os
from pathlib import Path


def first_profile(root: str) -> str:
    return os.listdir(root)[0]


def all_cells(root: str) -> list:
    return [p for p in glob.glob(f"{root}/*.json")]


def walk(root: Path) -> list:
    return [p.stem for p in root.glob("*.json")]
