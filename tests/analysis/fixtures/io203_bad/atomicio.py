"""Atomic writer helper (atomicity alone does not fix lost updates)."""
import os
import tempfile


def atomic_write(path, text):
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent))
    with os.fdopen(fd, "w") as fh:
        fh.write(text)
    os.replace(tmp_name, path)
