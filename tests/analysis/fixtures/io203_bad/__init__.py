"""IO203 positive: unguarded read-merge-write of a shared registry."""
