"""Two concurrent publishers each read, merge, replace: one merge lost."""
import json

from .atomicio import atomic_write
from .paths import registry_path


def read_registry(root):
    path = registry_path(root)
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return {}


def publish(root, entry):
    data = read_registry(root)          # read …
    data[entry["id"]] = entry           # … modify …
    # IO203: … write, with nothing serializing concurrent publishers.
    atomic_write(registry_path(root), json.dumps(data))
