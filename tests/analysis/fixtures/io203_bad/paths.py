"""Path producer for the shared registry file."""


def registry_path(root):
    return root / "registry.json"
