"""Self-lint gate: the shipped tree passes its own analyzer, no baseline.

This is the acceptance criterion for the determinism contract — every
DET/MUT finding in ``src/repro`` has been fixed at the source rather
than grandfathered, so the committed baseline stays empty and any new
finding fails CI immediately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_clean_with_empty_baseline():
    result = lint_paths([REPO_ROOT / "src" / "repro"])
    assert result.ok, [f.render() for f in result.findings]
    assert result.grandfathered == []
    assert result.files_checked > 100  # the whole tree, not a subset


def test_committed_baseline_is_empty():
    baseline = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert baseline == {
        "version": 2, "findings": {}, "content_findings": {}
    }
