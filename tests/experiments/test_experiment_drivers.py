"""Smoke + shape tests for every experiment driver (reduced scope)."""

import math

import pytest

from repro.experiments import (
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11_12,
    fig_control_latency,
    fig_elastic,
    fig_load,
    table1,
    table3,
)

FAST_FRACTIONS = (0.3, 0.6)


class TestTables:
    def test_table1_covers_all_twenty_workloads(self):
        rows = table1.run()
        assert len(rows) == 20
        text = table1.render(rows)
        assert "LP" in text and "HiKMeans" in text

    def test_table1_hibench_zeroes(self):
        rows = {r.measured.workload: r.measured for r in table1.run()}
        assert rows["Sort"].avg_stage_distance == 0.0
        assert rows["WordCount"].max_job_distance == 0

    def test_table3_covers_sparkbench(self):
        rows = table3.run()
        assert len(rows) == 14
        assert all(r.measured.num_jobs > 0 for r in rows)
        assert "I/O intensive" in table3.render(rows)


class TestFig2:
    def test_trace_dimensions(self):
        trace = fig2.run("CC", max_rdds=6)
        n_stages = trace.dag.num_active_stages
        assert len(trace.rdd_ids) <= 6
        for rid in trace.rdd_ids:
            assert len(trace.lru[rid]) == n_stages
            assert len(trace.lrc[rid]) == n_stages
            assert len(trace.mrd[rid]) == n_stages

    def test_metric_semantics_at_reference_points(self):
        trace = fig2.run("CC", max_rdds=6)
        dag = trace.dag
        for rid in trace.rdd_ids:
            prof = dag.profiles[rid]
            for seq in prof.read_seqs:
                assert trace.lru[rid][seq] == 0.0  # just touched
                assert trace.mrd[rid][seq] == 0.0  # needed right now
                assert trace.lrc[rid][seq] >= 1.0  # this read still counted

    def test_mrd_infinite_after_last_reference(self):
        trace = fig2.run("CC", max_rdds=6)
        for rid in trace.rdd_ids:
            prof = trace.dag.profiles[rid]
            last = max(prof.read_seqs, default=prof.created_seq)
            tail = trace.mrd[rid][last + 1:]
            assert all(math.isinf(v) for v in tail)

    def test_render_both_panels(self):
        trace = fig2.run("CC", max_rdds=4)
        for policy in ("lru", "lrc", "mrd"):
            assert "Figure 2" in fig2.render(trace, policy)


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4.run(workloads=("CC", "DT"), cache_fractions=FAST_FRACTIONS)

    def test_row_fields(self, rows):
        assert {r.workload for r in rows} == {"CC", "DT"}
        for r in rows:
            assert 0 < r.full <= 1.5
            assert 0 <= r.lru_hit <= 1 and 0 <= r.mrd_hit <= 1

    def test_io_workload_beats_cpu_workload(self, rows):
        by_name = {r.workload: r for r in rows}
        assert by_name["CC"].full < by_name["DT"].full

    def test_render_and_averages(self, rows):
        text = fig4.render(rows)
        assert "AVERAGE" in text
        avg = fig4.averages(rows)
        assert set(avg) == {"evict_only", "prefetch_only", "full", "lru_hit", "mrd_hit"}


class TestComparisonFigures:
    def test_fig5_mrd_vs_lrc(self):
        rows = fig5.run(workloads=("CC",), cache_fractions=FAST_FRACTIONS)
        (row,) = rows
        assert row.mrd_vs_lrc <= 1.05  # MRD does not lose to LRC on CC
        assert "LRC" in fig5.render(rows)

    def test_fig6_mrd_vs_memtune(self):
        rows = fig6.run(workloads=("PR",), cache_fractions=FAST_FRACTIONS)
        (row,) = rows
        assert row.mrd_vs_memtune <= 1.05
        assert "MemTune" in fig6.render(rows)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run("SVD++", fractions=(0.2, 0.5, 0.9), target_hit=0.3)

    def test_hit_ratio_monotone_in_cache_for_mrd(self, result):
        hits = result.hit["MRD"]
        assert all(b >= a - 0.02 for a, b in zip(hits, hits[1:]))

    def test_mrd_dominates_lru_hits(self, result):
        for lru_h, mrd_h in zip(result.hit["LRU"], result.hit["MRD"]):
            assert mrd_h >= lru_h - 0.02

    def test_cache_savings_positive(self, result):
        savings = fig7.cache_savings_pct(result)
        assert savings is None or savings >= 0
        assert "Figure 7" in fig7.render(result)


class TestAblationFigures:
    def test_fig8_lp_degrades_more(self):
        rows = fig8.run(cache_fractions=(0.4,))
        by_name = {r.workload: r for r in rows}
        lp_loss = by_name["LP"].job_metric_jct / by_name["LP"].stage_metric_jct
        km_loss = by_name["KM"].job_metric_jct / by_name["KM"].stage_metric_jct
        assert lp_loss >= km_loss
        assert "Figure 8" in fig8.render(rows)

    def test_fig9_km_degrades_more(self):
        rows = fig9.run(cache_fractions=(0.5,))
        by_name = {r.workload: r for r in rows}
        km_loss = by_name["KM"].adhoc_jct / by_name["KM"].recurring_jct
        tc_loss = by_name["TC"].adhoc_jct / by_name["TC"].recurring_jct
        assert km_loss >= tc_loss
        assert "Figure 9" in fig9.render(rows)

    def test_fig10_iterations_grow_dags(self):
        rows = fig10.run(workloads=("CC", "DT"), cache_fractions=(0.4,))
        by_name = {r.workload: r for r in rows}
        assert by_name["CC"].jobs_3x > by_name["CC"].jobs_1x
        assert by_name["DT"].jobs_3x == by_name["DT"].jobs_1x  # paper's callout
        assert "Figure 10" in fig10.render(rows)


class TestSummaryHelpers:
    def test_fig7_savings_none_when_target_unreached(self):
        from repro.experiments.fig7 import Fig7Result, cache_savings_pct

        result = Fig7Result(workload="x", target_hit=0.99)
        result.cache_to_reach_target = {"LRU": None, "MRD": 20.0}
        assert cache_savings_pct(result) is None

    def test_fig7_savings_math(self):
        from repro.experiments.fig7 import Fig7Result, cache_savings_pct

        result = Fig7Result(workload="x", target_hit=0.5)
        result.cache_to_reach_target = {"LRU": 100.0, "MRD": 40.0}
        assert cache_savings_pct(result) == 60.0

    def test_fig4_best_fraction_selection(self):
        rows = fig4.run(workloads=("SP",), cache_fractions=(0.2, 0.6))
        (row,) = rows
        assert row.best_fraction in (0.2, 0.6)
        assert row.full <= 1.02


class TestControlLatency:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig_control_latency.run(
            workloads=("PR",), latencies=(0.0, 4.0)
        )

    def test_grid_shape(self, rows):
        assert len(rows) == 4  # 1 workload x 2 schemes x 2 latencies
        assert {(r.scheme, r.latency_s) for r in rows} == {
            ("LRU", 0.0), ("LRU", 4.0), ("MRD", 0.0), ("MRD", 4.0),
        }

    def test_zero_latency_matches_instant_baseline(self, rows):
        for r in rows:
            if r.latency_s == 0.0:
                assert r.norm_jct == pytest.approx(1.0)
                assert r.stale_orders == 0

    def test_lru_is_flat_and_mrd_degrades(self, rows):
        by_cell = {(r.scheme, r.latency_s): r for r in rows}
        # LRU exchanges no distance state: latency cannot hurt it.
        assert by_cell["LRU", 4.0].norm_jct == pytest.approx(1.0)
        slow_mrd = by_cell["MRD", 4.0]
        assert slow_mrd.norm_jct >= 1.0
        assert slow_mrd.mean_order_delay == pytest.approx(4.0)
        assert slow_mrd.msgs_delivered == slow_mrd.msgs_sent

    def test_render(self, rows):
        text = fig_control_latency.render(rows)
        assert "Control-plane latency" in text and "vs instant" in text


class TestFigLoad:
    KWARGS = dict(
        rates=(0.05, 0.25), schemes=("LRU", "MRD"), num_apps=3
    )

    @pytest.fixture(scope="class")
    def rows(self):
        return fig_load.run(**self.KWARGS)

    def test_grid_shape(self, rows):
        # 2 rates x 2 schemes x 3 arbitrations, one row per cell.
        assert len(rows) == 12
        assert {(r.rate, r.scheme) for r in rows} == {
            (0.05, "LRU"), (0.05, "MRD"), (0.25, "LRU"), (0.25, "MRD"),
        }
        assert all(r.num_apps == 3 for r in rows)

    def test_deterministic_rerun(self, rows):
        assert fig_load.run(**self.KWARGS) == rows

    def test_sojourns_ordered_and_positive(self, rows):
        for r in rows:
            assert 0 < r.jct_p50 <= r.jct_p99
            assert r.makespan >= r.jct_p99
            assert 0.0 <= r.hit_ratio <= 1.0

    def test_mrd_beats_lru_on_hits(self, rows):
        by_cell = {(r.rate, r.scheme, r.arbitration): r for r in rows}
        for rate in (0.05, 0.25):
            for arb in ("static", "maxmin", "global-mrd"):
                assert by_cell[rate, "MRD", arb].hit_ratio >= \
                    by_cell[rate, "LRU", arb].hit_ratio

    def test_render(self, rows):
        text = fig_load.render(rows)
        assert "Offered load" in text and "global-mrd" in text


class TestFigElastic:
    KWARGS = dict(
        workloads=("KM",), churn_rates=(0.0, 0.4),
        rebalances=("drop", "migrate"),
    )

    @pytest.fixture(scope="class")
    def rows(self):
        return fig_elastic.run(**self.KWARGS)

    def test_grid_shape(self, rows):
        # Per scheme: one static row + one row per (churn, rebalance).
        assert {(r.scheme, r.churn_rate, r.rebalance) for r in rows} == {
            ("LRU", 0.0, "-"), ("LRU", 0.4, "drop"), ("LRU", 0.4, "migrate"),
            ("MRD", 0.0, "-"), ("MRD", 0.4, "drop"), ("MRD", 0.4, "migrate"),
        }

    def test_static_rows_are_their_own_baseline(self, rows):
        for r in rows:
            if r.churn_rate == 0.0:
                assert r.norm_jct == pytest.approx(1.0)
                assert r.nodes_joined == r.nodes_decommissioned == 0
                assert r.rebalanced_blocks == r.dropped_blocks == 0

    def test_churn_rows_actually_churn(self, rows):
        """The pinned seed gives every cell at one rate the same
        membership history — and at rate 0.4 on KM it is non-empty."""
        churned = [r for r in rows if r.churn_rate > 0]
        histories = {(r.nodes_joined, r.nodes_decommissioned) for r in churned}
        assert len(histories) == 1  # identical across schemes/rebalances
        joined, decommissioned = histories.pop()
        assert joined + decommissioned > 0

    def test_rebalance_accounting(self, rows):
        for r in rows:
            if r.rebalance == "drop":
                assert r.rebalanced_blocks == 0
                assert r.rebalanced_mb == 0.0
        assert sum(r.rebalanced_blocks
                   for r in rows if r.rebalance == "migrate") > 0

    def test_deterministic_rerun(self, rows):
        assert fig_elastic.run(**self.KWARGS) == rows

    def test_render(self, rows):
        text = fig_elastic.render(rows)
        assert "Elastic membership" in text and "vs static" in text


class TestCorrelations:
    def test_fig11_12_from_fig4_rows(self):
        rows = fig4.run(workloads=("CC", "DT", "PR"), cache_fractions=FAST_FRACTIONS)
        result = fig11_12.run(rows)
        assert len(result.workloads) == 3
        assert 0.0 <= result.r2_stage_distance <= 1.0
        assert 0.0 <= result.r2_refs_per_stage <= 1.0
        assert "trendline" in fig11_12.render(result)

    def test_linfit_constant_x(self):
        slope, r2 = fig11_12._linfit_r2([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert slope == 0.0 and r2 == 0.0
