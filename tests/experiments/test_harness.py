"""Unit tests for the shared experiment harness."""

import pytest

from repro.experiments.harness import (
    MIN_CACHE_MB,
    STANDARD_SCHEMES,
    build_workload_dag,
    cache_mb_for,
    format_table,
    sweep_workload,
)
from repro.simulator.config import TEST_CLUSTER


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        schemes = {k: STANDARD_SCHEMES[k] for k in ("LRU", "MRD")}
        return sweep_workload(
            "SP", schemes=schemes, cluster=TEST_CLUSTER,
            cache_fractions=(0.3, 0.6), partitions=16,
        )

    def test_all_combinations_present(self, sweep):
        assert len(sweep.runs) == 4
        assert sweep.fractions() == [0.3, 0.6]
        assert sweep.schemes() == ["LRU", "MRD"]

    def test_get_and_missing(self, sweep):
        run = sweep.get("MRD", 0.3)
        assert run.scheme == "MRD"
        with pytest.raises(KeyError):
            sweep.get("MRD", 0.99)

    def test_normalized_jct_baseline_is_one(self, sweep):
        assert sweep.normalized_jct("LRU", 0.3) == pytest.approx(1.0)

    def test_best_fraction_is_argmin(self, sweep):
        best = sweep.best_fraction("MRD")
        ratios = {f: sweep.normalized_jct("MRD", f) for f in sweep.fractions()}
        assert ratios[best] == min(ratios.values())

    def test_cache_floor(self):
        dag = build_workload_dag("SP", scale=0.001, partitions=4)
        assert cache_mb_for(dag, 0.01, TEST_CLUSTER) == MIN_CACHE_MB

    def test_prebuilt_dag_reused(self, sweep):
        again = sweep_workload(
            "SP", schemes={"LRU": STANDARD_SCHEMES["LRU"]},
            cluster=TEST_CLUSTER, cache_fractions=(0.3,), dag=sweep.dag,
        )
        assert again.dag is sweep.dag


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.345], [33, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.35" in text or "2.34" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded equally

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
