"""Smoke test for the markdown report generator (trimmed scope).

The full report takes minutes (Figure 4 sweeps every workload), so the
unit test patches the heavyweight drivers down to tiny scopes and
checks the document structure; the real thing runs via
``python -m repro report``.
"""

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, fig10
from repro.experiments.report import generate_report


def test_report_structure(tmp_path, monkeypatch):
    fig4_run = fig4.run
    fig5_run, fig6_run, fig7_run = fig5.run, fig6.run, fig7.run
    fig8_run, fig9_run, fig10_run = fig8.run, fig9.run, fig10.run
    monkeypatch.setattr(
        fig4, "run", lambda *a, **k: fig4_run(workloads=("SP",), cache_fractions=(0.4,))
    )
    monkeypatch.setattr(
        fig5, "run", lambda *a, **k: fig5_run(workloads=("CC",), cache_fractions=(0.4,))
    )
    monkeypatch.setattr(
        fig6, "run", lambda *a, **k: fig6_run(workloads=("PR",), cache_fractions=(0.4,))
    )
    monkeypatch.setattr(
        fig7, "run", lambda *a, **k: fig7_run(fractions=(0.3, 0.8), target_hit=0.3)
    )
    monkeypatch.setattr(fig8, "run", lambda *a, **k: fig8_run(cache_fractions=(0.4,)))
    monkeypatch.setattr(fig9, "run", lambda *a, **k: fig9_run(cache_fractions=(0.4,)))
    monkeypatch.setattr(
        fig10, "run", lambda *a, **k: fig10_run(workloads=("CC",), cache_fractions=(0.4,))
    )

    out = tmp_path / "report.md"
    text = generate_report(out=out)
    assert out.exists() and out.read_text() == text
    for heading in (
        "Table 1", "Table 3", "Figure 2", "Figure 4", "Figure 5",
        "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
        "Figures 11-12", "Headline summary",
    ):
        assert heading in text, heading
