"""Unit tests for the workload registry."""

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    HIBENCH_WORKLOADS,
    SPARKBENCH_WORKLOADS,
    WorkloadParams,
    build_workload,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_fourteen_sparkbench(self):
        assert len(SPARKBENCH_WORKLOADS) == 14

    def test_six_hibench(self):
        assert len(HIBENCH_WORKLOADS) == 6

    def test_names_unique(self):
        names = [s.name for s in ALL_WORKLOADS]
        assert len(names) == len(set(names))

    def test_paper_order(self):
        assert workload_names("sparkbench") == [
            "KM", "LinR", "LogR", "SVM", "DT", "MF", "PR",
            "TC", "SP", "LP", "SVD++", "CC", "SCC", "PO",
        ]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("NOPE")

    def test_suite_filter(self):
        assert set(workload_names("hibench")) == {
            "Sort", "WordCount", "TeraSort", "HiPageRank", "Bayes", "HiKMeans"
        }


class TestBuild:
    def test_build_returns_application(self):
        app = build_workload("CC")
        assert app.signature == "CC"
        assert app.jobs

    def test_kwargs_forwarded(self):
        app = build_workload("CC", partitions=8)
        assert all(r.num_partitions in (8,) or True for r in app.rdds)
        assert app.rdds[0].num_partitions == 8

    def test_params_and_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            build_workload("CC", WorkloadParams(), partitions=8)

    def test_scale_shrinks_input(self):
        small = build_workload("CC", scale=0.5)
        full = build_workload("CC")
        assert small.rdds[0].size_mb == pytest.approx(full.rdds[0].size_mb * 0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WorkloadParams(scale=0.0)
        with pytest.raises(ValueError):
            WorkloadParams(partitions=0)
        with pytest.raises(ValueError):
            WorkloadParams(iterations=0)
