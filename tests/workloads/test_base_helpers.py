"""Tests for the shared workload-builder helpers."""

import pytest

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    gradient_descent_loop,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)


def ctx_with_graph(parts=8):
    ctx = SparkContext("helper-test")
    raw = ctx.text_file("edges", size_mb=80.0, num_partitions=parts)
    edges = raw.map(name="edges").cache()
    vertices = edges.map(size_factor=0.25, name="v0").cache()
    vertices.count()
    return ctx, edges, vertices


class TestPregelLoop:
    def test_one_job_per_superstep(self):
        ctx, edges, vertices = ctx_with_graph()
        pregel_superstep_loop(ctx, edges, vertices, supersteps=4)
        # init job + 4 superstep jobs.
        assert len(ctx.jobs) == 5

    def test_extra_jobs_per_superstep(self):
        ctx, edges, vertices = ctx_with_graph()
        pregel_superstep_loop(ctx, edges, vertices, supersteps=3, jobs_per_superstep=2)
        assert len(ctx.jobs) == 1 + 3 * 2

    def test_vertex_keep_controls_unpersists(self):
        ctx, edges, vertices = ctx_with_graph()
        pregel_superstep_loop(ctx, edges, vertices, supersteps=5, vertex_keep=2)
        assert len(ctx.unpersist_events) == 4  # 6 generations, keep 2

    def test_vertex_size_stays_stable(self):
        ctx, edges, vertices = ctx_with_graph()
        final = pregel_superstep_loop(ctx, edges, vertices, supersteps=5)
        assert final.partition_size_mb == pytest.approx(
            vertices.partition_size_mb, rel=0.01
        )

    def test_messages_stay_small(self):
        """Shuffle volume per superstep ≈ msg_factor × vertex size."""
        ctx, edges, vertices = ctx_with_graph()
        pregel_superstep_loop(ctx, edges, vertices, supersteps=2, msg_factor=0.3)
        dag = build_dag(SparkApplication(ctx))
        from repro.dag.analysis import workload_characteristics

        chars = workload_characteristics(dag)
        assert chars.shuffle_read_mb < chars.total_stage_input_mb / 3

    def test_stages_per_superstep_adds_shuffles(self):
        ctx1, e1, v1 = ctx_with_graph()
        pregel_superstep_loop(ctx1, e1, v1, supersteps=3, stages_per_superstep=1)
        dag1 = build_dag(SparkApplication(ctx1))
        ctx2, e2, v2 = ctx_with_graph()
        pregel_superstep_loop(ctx2, e2, v2, supersteps=3, stages_per_superstep=3)
        dag2 = build_dag(SparkApplication(ctx2))
        assert dag2.num_active_stages > dag1.num_active_stages

    def test_rejects_zero_supersteps(self):
        ctx, edges, vertices = ctx_with_graph()
        with pytest.raises(ValueError):
            pregel_superstep_loop(ctx, edges, vertices, supersteps=0)

    def test_delta_tracking_reads_previous_generation(self):
        ctx, edges, vertices = ctx_with_graph()
        pregel_superstep_loop(ctx, edges, vertices, supersteps=3, vertex_keep=3)
        dag = build_dag(SparkApplication(ctx))
        # With delta tracking, at least one vertex generation is read by
        # more than one later superstep.
        multi_read = [p for p in dag.profiles.values() if p.reference_count >= 2]
        assert multi_read


class TestGradientDescentLoop:
    def test_one_job_per_iteration(self):
        ctx = SparkContext("gd")
        data = ctx.text_file("d", 32.0, 4).map(name="points").cache()
        data.count()
        gradient_descent_loop(ctx, data, iterations=4)
        assert len(ctx.jobs) == 5

    def test_tree_stages(self):
        ctx = SparkContext("gd")
        data = ctx.text_file("d", 32.0, 4).map(name="points").cache()
        data.count()
        gradient_descent_loop(ctx, data, iterations=2, stages_per_iteration=3)
        dag = build_dag(SparkApplication(ctx))
        # load (1) + 2 iterations x 3 stages each.
        assert dag.num_active_stages == 1 + 2 * 3

    def test_rejects_zero_iterations(self):
        ctx = SparkContext("gd")
        data = ctx.text_file("d", 32.0, 4)
        with pytest.raises(ValueError):
            gradient_descent_loop(ctx, data, iterations=0)


class TestSmallHelpers:
    def test_scaled(self):
        assert scaled(WorkloadParams(scale=0.25), 100.0) == 25.0

    def test_iterations_or_default(self):
        assert iterations_or_default(WorkloadParams(), 7) == 7
        assert iterations_or_default(WorkloadParams(iterations=3), 7) == 3

    def test_spec_rejects_jobless_builder(self):
        spec = WorkloadSpec(
            name="empty", full_name="Empty", suite="test", category="t",
            job_type="Mixed", input_mb=1.0, default_iterations=1,
            builder=lambda ctx, params: None,
        )
        with pytest.raises(RuntimeError, match="no jobs"):
            spec.build()
