"""Per-workload structural deep-dives.

These lock each SparkBench generator to its documented structure:
which RDDs it caches, how references flow, which unpersists happen.
If a builder is edited, these say exactly what changed.
"""

import pytest

from repro.dag.analysis import workload_characteristics
from repro.dag.dag_builder import ApplicationDAG, build_dag
from repro.workloads import WorkloadParams, get_workload


@pytest.fixture(scope="module")
def dag_of():
    cache: dict[str, ApplicationDAG] = {}

    def get(name: str) -> ApplicationDAG:
        if name not in cache:
            cache[name] = build_dag(get_workload(name).build(WorkloadParams(partitions=8)))
        return cache[name]

    return get


def cached_names(dag):
    return {p.rdd.name for p in dag.profiles.values()}


def profile_by_name(dag, name):
    for p in dag.profiles.values():
        if p.rdd.name == name:
            return p
    raise KeyError(name)


class TestKMeans:
    def test_caches_points_norms_sample(self, dag_of):
        assert cached_names(dag_of("KM")) == {"km-points", "km-norms", "km-sample"}

    def test_points_read_every_iteration(self, dag_of):
        dag = dag_of("KM")
        points = profile_by_name(dag, "km-points")
        # 15 Lloyd iterations + final evaluation + init sampling.
        assert points.reference_count >= 16

    def test_sample_has_long_gap(self, dag_of):
        dag = dag_of("KM")
        sample = profile_by_name(dag, "km-sample")
        gaps = sample.job_gaps()
        assert max(gaps, default=0) >= 10  # init → final evaluation


class TestGradientDescentFamily:
    @pytest.mark.parametrize("name,data_rdd", [
        ("LinR", "linr-points"), ("LogR", "logr-points"),
    ])
    def test_single_cached_training_set(self, dag_of, name, data_rdd):
        dag = dag_of(name)
        assert cached_names(dag) == {data_rdd}

    def test_svm_validation_read_once_at_end(self, dag_of):
        dag = dag_of("SVM")
        val = profile_by_name(dag, "svm-validation")
        assert val.reference_count == 1
        assert val.read_jobs[0] == dag.num_jobs - 1

    def test_dt_caches_only_treepoints(self, dag_of):
        assert cached_names(dag_of("DT")) == {"dt-treepoints"}


class TestGraphFamily:
    @pytest.mark.parametrize("name,edges_rdd", [
        ("PR", "pr-edges"), ("CC", "cc-edges"), ("PO", "po-edges"),
        ("LP", "lp-edges"), ("SCC", "scc-edges"), ("SVD++", "svdpp-edges"),
    ])
    def test_edges_are_the_hot_rdd(self, dag_of, name, edges_rdd):
        dag = dag_of(name)
        edges = profile_by_name(dag, edges_rdd)
        assert edges.reference_count == max(
            p.reference_count for p in dag.profiles.values()
        )

    @pytest.mark.parametrize("name", ["PR", "CC", "PO", "LP", "SCC", "SVD++", "SP"])
    def test_vertex_generations_unpersisted(self, dag_of, name):
        dag = dag_of(name)
        assert dag.app.ctx.unpersist_events, f"{name} never unpersists"

    @pytest.mark.parametrize("name", ["PR", "CC", "PO", "LP"])
    def test_edges_never_unpersisted(self, dag_of, name):
        dag = dag_of(name)
        unpersisted = {ev.rdd.name for ev in dag.app.ctx.unpersist_events}
        assert not any("edges" in n for n in unpersisted)

    def test_mf_alternates_user_item_factors(self, dag_of):
        dag = dag_of("MF")
        names = cached_names(dag)
        assert any(n.startswith("mf-users-") for n in names)
        assert any(n.startswith("mf-items-") for n in names)
        assert "mf-user-part" in names and "mf-item-part" in names

    def test_tc_majority_single_use(self, dag_of):
        dag = dag_of("TC")
        single_or_none = [
            p for p in dag.profiles.values() if p.reference_count <= 1
        ]
        assert len(single_or_none) >= len(dag.profiles) * 0.6


class TestJobTypesDriveCosts:
    def test_cpu_intensive_have_higher_compute_density(self, dag_of):
        def compute_per_input_mb(dag):
            total_cpu = sum(
                s.compute_cost_per_task * s.num_tasks for s in dag.active_stages
            )
            chars = workload_characteristics(dag)
            return total_cpu / max(chars.total_stage_input_mb, 1.0)

        cpu_heavy = min(compute_per_input_mb(dag_of(n)) for n in ("LinR", "LogR", "DT"))
        io_heavy = max(compute_per_input_mb(dag_of(n)) for n in ("PR", "CC", "PO", "LP"))
        assert cpu_heavy > io_heavy * 3
