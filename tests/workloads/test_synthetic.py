"""Tests for the synthetic random-DAG workload generator."""

import random

import pytest

from repro.dag.dag_builder import build_dag
from repro.policies.scheme import LruScheme
from repro.simulator.engine import simulate
from repro.workloads.synthetic import SyntheticConfig, generate_application
from tests.simulator.test_engine import small_config


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = build_dag(generate_application(7))
        b = build_dag(generate_application(7))
        assert a.num_stages == b.num_stages
        assert a.num_jobs == b.num_jobs
        assert {r: p.read_seqs for r, p in a.profiles.items()} == {
            r: p.read_seqs for r, p in b.profiles.items()
        }

    def test_different_seeds_differ(self):
        shapes = {
            (dag.num_stages, dag.num_active_stages, len(dag.profiles))
            for dag in (build_dag(generate_application(s)) for s in range(6))
        }
        assert len(shapes) > 1

    def test_job_count_matches_config(self):
        cfg = SyntheticConfig(num_jobs=5)
        app = generate_application(1, cfg)
        assert len(app.jobs) == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_jobs=0)
        with pytest.raises(ValueError):
            SyntheticConfig(cache_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(stages_per_job=(3, 2))

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_dags_are_valid(self, seed):
        dag = build_dag(generate_application(seed))
        assert dag.num_active_stages > 0
        for prof in dag.profiles.values():
            assert all(s >= prof.created_seq for s in prof.read_seqs)

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_apps_simulate(self, seed):
        dag = build_dag(generate_application(seed))
        metrics = simulate(dag, small_config(cache_mb=32.0), LruScheme())
        assert metrics.jct > 0
        assert metrics.num_stages_executed == dag.num_active_stages

    def test_injected_rng_matches_default_seeding(self):
        """``rng=Random(seed)`` reproduces the seed-only call bit-for-bit.

        This is the DET001 contract: the generator draws only from the
        injected ``random.Random``, never the process-global RNG.
        """
        default = build_dag(generate_application(7))
        injected = build_dag(generate_application(7, rng=random.Random(7)))
        assert default.num_stages == injected.num_stages
        assert default.num_jobs == injected.num_jobs
        assert {r: p.read_seqs for r, p in default.profiles.items()} == {
            r: p.read_seqs for r, p in injected.profiles.items()
        }

    def test_process_global_rng_untouched(self):
        random.seed(1234)
        state = random.getstate()
        generate_application(3)
        assert random.getstate() == state

    def test_large_envelope(self):
        cfg = SyntheticConfig(num_jobs=40, stages_per_job=(2, 6))
        dag = build_dag(generate_application(3, cfg))
        assert dag.num_jobs == 40
        assert dag.num_stages >= dag.num_active_stages
