"""Shape tests: every workload's DAG must track its paper Table 1/3 row.

These are deliberately tolerant (the generators are synthetic), but
they pin the *orderings* the paper's analysis rests on: LP/SCC have the
most stages and largest stage distances, HiBench has near-zero reuse,
CPU-intensive ML workloads have single-digit stage counts, and stage
counts exceed active counts exactly for the iterative workloads.
"""

import pytest

from repro.dag.analysis import distance_stats, workload_characteristics
from repro.dag.dag_builder import build_dag
from repro.workloads import WorkloadParams, get_workload

#: name -> (jobs, stages, active_stages) exact expectations at defaults.
EXACT_SHAPES = {
    "KM": (17, 19, 19),
    "LinR": (6, 9, 9),
    "LogR": (6, 9, 9),
    "SVM": (10, 29, 20),
    "DT": (10, 16, 16),
    "MF": (8, 77, 22),
    "PR": (7, 75, 24),
    "TC": (2, 13, 9),
    "SP": (3, 6, 5),
    "LP": (23, 780, 87),
    "SVD++": (14, 124, 27),
    "CC": (6, 49, 19),
    "SCC": (26, 967, 95),
    "PO": (17, 423, 63),
}


@pytest.fixture(scope="module")
def dags():
    params = WorkloadParams(partitions=16)  # small partitions: fast builds
    return {
        name: build_dag(get_workload(name).build(params)) for name in EXACT_SHAPES
    }


@pytest.mark.parametrize("name", sorted(EXACT_SHAPES))
def test_exact_job_and_stage_counts(name, dags):
    """Partition count must not change the job/stage structure."""
    dag = dags[name]
    jobs, stages, active = EXACT_SHAPES[name]
    assert dag.num_jobs == jobs
    assert dag.num_stages == stages
    assert dag.num_active_stages == active


def test_iterative_workloads_have_skipped_stages(dags):
    for name in ("MF", "PR", "LP", "SVD++", "CC", "SCC", "PO"):
        assert dags[name].num_stages > dags[name].num_active_stages, name


def test_lp_scc_have_largest_stage_distances(dags):
    sd = {name: distance_stats(dag).avg_stage_distance for name, dag in dags.items()}
    top_two = sorted(sd, key=sd.get, reverse=True)[:2]
    assert set(top_two) == {"LP", "SCC"}


def test_cpu_intensive_have_small_distances(dags):
    sd = {name: distance_stats(dag).avg_stage_distance for name, dag in dags.items()}
    for cpu_wl in ("LinR", "LogR", "SVM", "DT"):
        assert sd[cpu_wl] < sd["LP"] / 3


def test_every_sparkbench_workload_has_cached_rdds(dags):
    for name, dag in dags.items():
        assert dag.profiles, f"{name} caches nothing"


def test_tc_has_lowest_refs_per_rdd(dags):
    refs = {
        name: workload_characteristics(dag).refs_per_rdd for name, dag in dags.items()
    }
    assert refs["TC"] == min(refs.values())
    assert refs["TC"] < 1.0  # paper: 0.80


class TestHiBench:
    @pytest.mark.parametrize("name", ["Sort", "WordCount"])
    def test_no_reuse_workloads_have_zero_distances(self, name):
        dag = build_dag(get_workload(name).build(WorkloadParams(partitions=8)))
        stats = distance_stats(dag)
        assert stats.avg_job_distance == 0.0
        assert stats.max_stage_distance == 0

    def test_terasort_single_cross_job_reference(self):
        dag = build_dag(get_workload("TeraSort").build(WorkloadParams(partitions=8)))
        stats = distance_stats(dag)
        assert stats.max_job_distance == 1

    def test_hibench_distances_below_sparkbench_iterative(self, ):
        params = WorkloadParams(partitions=8)
        hibench_max = max(
            distance_stats(build_dag(get_workload(n).build(params))).avg_stage_distance
            for n in ("Sort", "WordCount", "TeraSort", "HiPageRank", "Bayes")
        )
        lp = distance_stats(
            build_dag(get_workload("LP").build(WorkloadParams(partitions=8)))
        ).avg_stage_distance
        assert hibench_max < lp / 4


class TestIterationsKnob:
    def test_triple_iterations_grows_jobs(self):
        spec = get_workload("CC")
        base = build_dag(spec.build(WorkloadParams(partitions=8)))
        tripled = build_dag(
            spec.build(WorkloadParams(partitions=8, iterations=spec.default_iterations * 3))
        )
        assert tripled.num_jobs > base.num_jobs
        assert tripled.num_stages > base.num_stages

    def test_dt_iterations_ineffective_flag(self):
        spec = get_workload("DT")
        assert not spec.iterations_effective
        base = build_dag(spec.build(WorkloadParams(partitions=8)))
        # The builder ignores the knob entirely (fixed tree depth).
        same = build_dag(spec.build(WorkloadParams(partitions=8, iterations=99)))
        assert same.num_jobs == base.num_jobs
