"""Every example script must run cleanly end to end.

Executed as subprocesses (fresh interpreter, no test-process state), so
these catch import breakage, API drift and crashes in the documented
entry points.  The two sweep-heavy studies dominate the runtime of this
module (~30 s total).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["application:", "MRD"],
    "policy_playground.py": ["Figure 2", "MRD"],
    "adhoc_vs_recurring.py": ["ad-hoc penalty", "matches"],
    "failure_study.py": ["Blocks lost", "advantage survives"],
    "pagerank_cache_study.py": ["best MRD point", "vs LRU"],
    "custom_workload.py": ["Custom workload", "exported"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in proc.stdout, f"{script}: missing {marker!r}"


def test_all_examples_are_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "new example scripts must be added to EXPECTED_MARKERS"
    )
