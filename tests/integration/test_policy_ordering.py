"""Integration: cross-policy behaviour on real (scaled-down) workloads.

These tests run complete workload simulations and assert the orderings
the paper's evaluation rests on — MRD's eviction matches the MIN
oracle, MRD never loses badly to LRU, DAG-aware policies beat LRU on
I/O-intensive graph workloads, and the ad-hoc/job-distance ablations
degrade exactly the workloads the paper says they degrade.
"""

import pytest

from repro.core.policy import MrdScheme
from repro.dag.analysis import peak_live_cached_mb
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import BeladyScheme, LrcScheme, LruScheme, MemTuneScheme
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate
from repro.workloads import WorkloadParams, get_workload

#: Scaled-down builds so the whole matrix stays fast.
_PARAMS = WorkloadParams(partitions=32)


@pytest.fixture(scope="module")
def dag_cache():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = build_dag(get_workload(name).build(_PARAMS))
        return cache[name]

    return get


def run(dag, scheme, fraction=0.5, cluster=MAIN_CLUSTER):
    cache = max(peak_live_cached_mb(dag) * fraction / cluster.num_nodes, 8.0)
    return simulate(dag, cluster.with_cache(cache), scheme)


IO_WORKLOADS = ["PR", "CC", "PO", "SVD++", "LP"]


@pytest.mark.parametrize("name", IO_WORKLOADS)
def test_mrd_eviction_matches_min_oracle(dag_cache, name):
    """MRD-evict implements the same ranking as Belady's MIN here."""
    dag = dag_cache(name)
    mrd = run(dag, MrdScheme(prefetch=False, eager_purge=False))
    belady = run(dag, BeladyScheme())
    assert mrd.stats.hits == belady.stats.hits
    assert mrd.jct == pytest.approx(belady.jct, rel=1e-9)


@pytest.mark.parametrize("name", IO_WORKLOADS)
def test_full_mrd_beats_lru_on_io_workloads(dag_cache, name):
    dag = dag_cache(name)
    lru = run(dag, LruScheme())
    mrd = run(dag, MrdScheme())
    assert mrd.jct < lru.jct
    assert mrd.hit_ratio > lru.hit_ratio


@pytest.mark.parametrize("name", IO_WORKLOADS + ["KM", "SVM", "DT"])
def test_mrd_never_loses_badly_to_lru(dag_cache, name):
    dag = dag_cache(name)
    lru = run(dag, LruScheme())
    mrd = run(dag, MrdScheme())
    assert mrd.jct <= lru.jct * 1.1


@pytest.mark.parametrize("name", ["PR", "CC", "PO"])
def test_mrd_at_least_matches_lrc_and_memtune(dag_cache, name):
    dag = dag_cache(name)
    mrd = run(dag, MrdScheme())
    lrc = run(dag, LrcScheme())
    memtune = run(dag, MemTuneScheme())
    assert mrd.jct <= lrc.jct * 1.05
    assert mrd.jct <= memtune.jct * 1.05


def test_adhoc_hurts_kmeans_not_triangle_count(dag_cache):
    """Fig. 9's contrast: cross-job reuse suffers without the full DAG."""
    km = dag_cache("KM")
    tc = dag_cache("TC")
    km_rec = run(km, MrdScheme(mode="recurring"))
    km_adhoc = run(km, MrdScheme(mode="adhoc"))
    tc_rec = run(tc, MrdScheme(mode="recurring"))
    tc_adhoc = run(tc, MrdScheme(mode="adhoc"))
    km_penalty = km_adhoc.jct / km_rec.jct
    tc_penalty = tc_adhoc.jct / tc_rec.jct
    assert km_penalty > 1.05
    assert tc_penalty < km_penalty


def test_job_distance_hurts_lp_more_than_km(dag_cache):
    """Fig. 8's contrast: LP has many stages per job, KM has ~1."""
    lp = dag_cache("LP")
    km = dag_cache("KM")
    lp_stage = run(lp, MrdScheme(metric="stage"))
    lp_job = run(lp, MrdScheme(metric="job"))
    km_stage = run(km, MrdScheme(metric="stage"))
    km_job = run(km, MrdScheme(metric="job"))
    lp_degradation = lp_job.jct / lp_stage.jct
    km_degradation = km_job.jct / km_stage.jct
    assert lp_degradation >= km_degradation


@pytest.mark.parametrize("name", ["CC", "PR"])
def test_hit_ratio_ordering(dag_cache, name):
    """LRU ≤ {LRC, MemTune} ≤ full MRD on dependency-rich workloads."""
    dag = dag_cache(name)
    lru = run(dag, LruScheme()).hit_ratio
    lrc = run(dag, LrcScheme()).hit_ratio
    mrd = run(dag, MrdScheme()).hit_ratio
    assert lru <= lrc + 0.05
    assert lrc <= mrd + 0.05
    assert lru < mrd


def test_every_scheme_completes_every_sparkbench_workload(dag_cache):
    """Smoke: no scheme crashes or violates accounting on any workload."""
    from repro.workloads import workload_names

    schemes = [LruScheme, LrcScheme, MemTuneScheme, BeladyScheme, MrdScheme,
               lambda: MrdScheme(mode="adhoc"), lambda: MrdScheme(metric="job")]
    for name in workload_names("sparkbench"):
        dag = dag_cache(name)
        for factory in schemes:
            metrics = run(dag, factory(), fraction=0.3)
            assert metrics.jct > 0
            assert 0.0 <= metrics.hit_ratio <= 1.0
            assert metrics.num_stages_executed == dag.num_active_stages


def test_hibench_workloads_are_policy_indifferent(dag_cache):
    """The paper dropped HiBench because near-zero reference distances
    give DAG-aware policies nothing to exploit — MRD must neither help
    nor hurt meaningfully on any of the six."""
    from repro.workloads import workload_names

    for name in workload_names("hibench"):
        dag = dag_cache(name)
        lru = run(dag, LruScheme(), fraction=0.4)
        mrd = run(dag, MrdScheme(), fraction=0.4)
        assert mrd.jct <= lru.jct * 1.1, name
        ratio = mrd.jct / lru.jct
        assert 0.5 <= ratio <= 1.1, f"{name}: unexpected HiBench swing {ratio}"
