"""Regression tests for block-accounting fixes.

Three bugs in the manager's bookkeeping, each with the scenario that
exposed it:

* a purge left the purged block in ``inflight_prefetch``, so an
  already-issued transfer could re-insert it after the purge;
* ``_account_evictions`` cleared ``_prefetched_unread`` only on the
  *routed owner* manager, so on shared clusters the evicting manager
  could later claim ``prefetches_used`` for a block no longer resident;
* eviction trace events resolved the victim's distance through the
  recorder's run-global hook, which under multi-tenancy belongs to a
  different application than the namespaced rdd id being evicted.
"""

from __future__ import annotations

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.block_manager import BlockManager
from repro.cluster.block_manager_master import BlockManagerMaster
from repro.cluster.network import DiskModel
from repro.cluster.node import WorkerNode
from repro.policies.lru import LruPolicy
from repro.trace.recorder import TraceRecorder


def blk(rdd, part, size=10.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


def make_node(capacity=30.0):
    return WorkerNode(
        node_id=0, num_slots=2, cache_capacity_mb=capacity,
        policy=LruPolicy(), disk_model=DiskModel(),
    )


@pytest.fixture
def mgr():
    return BlockManager(make_node())


class TestPurgeCancelsInflight:
    def test_purge_block_cancels_matching_inflight(self, mgr):
        mgr.node.disk.put(blk(3, 0))
        mgr.inflight_prefetch[BlockId(3, 0)] = 12.5
        mgr.purge_block(BlockId(3, 0), drop_disk=True)
        assert BlockId(3, 0) not in mgr.inflight_prefetch
        assert BlockId(3, 0) not in mgr.node.disk

    def test_purge_block_keeps_unrelated_inflight(self, mgr):
        mgr.insert_cached(blk(3, 0))
        mgr.inflight_prefetch[BlockId(4, 1)] = 9.0
        assert mgr.purge_block(BlockId(3, 0))
        assert mgr.inflight_prefetch == {BlockId(4, 1): 9.0}

    def test_purge_emits_cancel_event(self, mgr):
        mgr.recorder = TraceRecorder()
        mgr.inflight_prefetch[BlockId(3, 0)] = 12.5
        mgr.purge_block(BlockId(3, 0))
        (cancel,) = mgr.recorder.of_kind("prefetch_cancel")
        assert (cancel.rdd_id, cancel.partition) == (3, 0)
        assert cancel.reason == "purged"

    def test_rdd_purge_cancels_inflight_only_blocks(self):
        """A block only in flight (not yet resident) must also cancel."""
        master = BlockManagerMaster([make_node()])
        mgr = master.managers[0]
        mgr.node.disk.put(blk(5, 0))
        mgr.inflight_prefetch[BlockId(5, 0)] = 3.0
        mgr.inflight_prefetch[BlockId(6, 0)] = 3.0
        master.purge_rdd(5, drop_disk=True)
        assert BlockId(5, 0) not in mgr.inflight_prefetch
        assert BlockId(6, 0) in mgr.inflight_prefetch

    def test_cancel_inflight_reports_whether_cancelled(self, mgr):
        mgr.inflight_prefetch[BlockId(1, 0)] = 1.0
        assert mgr.cancel_inflight(BlockId(1, 0))
        assert not mgr.cancel_inflight(BlockId(1, 0))


class TestSharedClusterEvictionAccounting:
    """Evictions routed to another app's manager on a shared node."""

    def _pair(self):
        """Two per-app managers over one shared node, router to owner."""
        node = make_node(capacity=30.0)
        evictor = BlockManager(node)
        owner = BlockManager(node)
        evictor.eviction_router = lambda bid: owner
        return evictor, owner

    def test_evicting_manager_forgets_prefetched_unread(self):
        evictor, owner = self._pair()
        evictor.node.disk.put(blk(0, 0))
        assert evictor.promote_from_disk(blk(0, 0), prefetch=True)
        assert BlockId(0, 0) in evictor._prefetched_unread
        # Fill the store so the next insert evicts the prefetched block.
        evictor.insert_cached(blk(1, 0))
        evictor.insert_cached(blk(1, 1))
        evictor.insert_cached(blk(1, 2))
        assert BlockId(0, 0) not in evictor.node.memory
        # Both managers' books are clean, however the eviction routed.
        assert BlockId(0, 0) not in evictor._prefetched_unread
        assert BlockId(0, 0) not in owner._prefetched_unread
        assert evictor.stats.evictions == 0
        assert owner.stats.evictions == 1
        assert owner.stats.evicted_mb == pytest.approx(10.0)

    def test_no_phantom_prefetch_use_after_routed_eviction(self):
        """Re-reading a re-inserted block must not claim the old prefetch."""
        evictor, owner = self._pair()
        evictor.node.disk.put(blk(0, 0))
        evictor.promote_from_disk(blk(0, 0), prefetch=True)
        for p in range(3):
            evictor.insert_cached(blk(1, p))
        # The block comes back through the demand path and is read.
        evictor.insert_cached(blk(0, 0))
        evictor.access(BlockId(0, 0))
        assert evictor.stats.prefetches_used == 0
        assert owner.stats.prefetches_used == 0


class TestEvictionEventDistance:
    def test_distance_resolved_through_owner_source(self):
        """The owner's table, not the run-global hook, prices a victim."""
        node = make_node(capacity=30.0)
        evictor = BlockManager(node)
        owner = BlockManager(node)
        evictor.eviction_router = lambda bid: owner
        owner.distance_source = {0: 2.0, 1: 7.0}.get
        rec = TraceRecorder()
        rec.distance_of = lambda rdd_id: -99.0  # wrong app's table
        evictor.recorder = rec
        for p in range(3):
            evictor.insert_cached(blk(0, p))
        evictor.insert_cached(blk(1, 0))  # evicts (0, 0)
        (ev,) = rec.of_kind("eviction")
        assert (ev.rdd_id, ev.partition) == (0, 0)
        assert ev.distance == 2.0

    def test_unresolvable_distance_recorded_as_none(self):
        node = make_node(capacity=30.0)
        mgr = BlockManager(node)
        mgr.distance_source = lambda rdd_id: None
        rec = TraceRecorder()
        rec.distance_of = lambda rdd_id: -99.0
        mgr.recorder = rec
        for p in range(3):
            mgr.insert_cached(blk(0, p))
        mgr.insert_cached(blk(1, 0))
        (ev,) = rec.of_kind("eviction")
        assert ev.distance is None

    def test_recorder_fallback_without_source(self):
        """No per-manager source installed: the run-global hook answers."""
        node = make_node(capacity=30.0)
        mgr = BlockManager(node)
        rec = TraceRecorder()
        rec.distance_of = lambda rdd_id: 4.5
        mgr.recorder = rec
        for p in range(3):
            mgr.insert_cached(blk(0, p))
        mgr.insert_cached(blk(1, 0))
        (ev,) = rec.of_kind("eviction")
        assert ev.distance == 4.5
