"""Unit tests for block identities and helpers."""

import pytest

from repro.cluster.block import Block, BlockId, block_of, blocks_of
from repro.dag.context import SparkContext


@pytest.fixture
def rdd():
    return SparkContext("t").text_file("a", size_mb=12.0, num_partitions=3)


class TestBlockId:
    def test_equality_and_hash(self):
        assert BlockId(1, 2) == BlockId(1, 2)
        assert hash(BlockId(1, 2)) == hash(BlockId(1, 2))
        assert BlockId(1, 2) != BlockId(2, 1)

    def test_ordering(self):
        assert BlockId(1, 0) < BlockId(1, 1) < BlockId(2, 0)

    def test_repr_matches_spark_convention(self):
        assert repr(BlockId(3, 7)) == "rdd_3_7"


class TestBlock:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Block(id=BlockId(0, 0), size_mb=-1.0)

    def test_blocks_of_covers_all_partitions(self, rdd):
        blocks = blocks_of(rdd)
        assert len(blocks) == 3
        assert {b.id.partition for b in blocks} == {0, 1, 2}
        assert all(b.size_mb == pytest.approx(4.0) for b in blocks)
        assert all(b.id.rdd_id == rdd.id for b in blocks)

    def test_block_of_bounds(self, rdd):
        assert block_of(rdd, 2).id.partition == 2
        with pytest.raises(IndexError):
            block_of(rdd, 3)
        with pytest.raises(IndexError):
            block_of(rdd, -1)
