"""Unit tests for cluster-wide block routing and purge orders."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.policies.lru import LruPolicy


def blk(rdd, part, size=5.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


@pytest.fixture
def cluster():
    config = ClusterConfig(num_nodes=3, slots_per_node=2, cache_mb_per_node=50.0)
    return build_cluster(config, lambda node_id: LruPolicy())


class TestRouting:
    def test_home_node_round_robin(self, cluster):
        master = cluster.master
        assert master.home_node_id(BlockId(0, 0)) == 0
        assert master.home_node_id(BlockId(0, 1)) == 1
        assert master.home_node_id(BlockId(0, 3)) == 0

    def test_task_node_matches_block_home(self, cluster):
        master = cluster.master
        for p in range(9):
            assert master.task_node_id(p) == master.home_node_id(BlockId(0, p))

    def test_manager_for_routes_to_home(self, cluster):
        master = cluster.master
        mgr = master.manager_for(BlockId(0, 4))
        assert mgr.node.node_id == 1

    def test_empty_cluster_rejected(self):
        from repro.cluster.block_manager_master import BlockManagerMaster

        with pytest.raises(ValueError):
            BlockManagerMaster([])


class TestPurge:
    def test_purge_rdd_cluster_wide(self, cluster):
        master = cluster.master
        for p in range(6):
            master.manager_for(BlockId(1, p)).insert_cached(blk(1, p))
            master.manager_for(BlockId(2, p)).insert_cached(blk(2, p))
        dropped = master.purge_rdd(1)
        assert dropped == 6
        assert not any(b.id.rdd_id == 1 for b in master.cached_blocks())
        assert sum(1 for b in master.cached_blocks() if b.id.rdd_id == 2) == 6
        # Disk copies survive a plain purge.
        assert master.disk_contains(BlockId(1, 0))

    def test_purge_drop_disk(self, cluster):
        master = cluster.master
        master.manager_for(BlockId(1, 0)).insert_cached(blk(1, 0))
        master.purge_rdd(1, drop_disk=True)
        assert not master.disk_contains(BlockId(1, 0))

    def test_memory_contains(self, cluster):
        master = cluster.master
        master.manager_for(BlockId(1, 0)).insert_cached(blk(1, 0))
        assert master.memory_contains(BlockId(1, 0))
        assert not master.memory_contains(BlockId(1, 1))


class TestAggregation:
    def test_total_stats_sums_nodes(self, cluster):
        master = cluster.master
        for p in range(6):
            master.manager_for(BlockId(0, p)).insert_cached(blk(0, p))
            master.manager_for(BlockId(0, p)).access(BlockId(0, p))
        total = master.total_stats()
        assert total.insertions == 6
        assert total.hits == 6
        assert total.hit_ratio == pytest.approx(1.0)
