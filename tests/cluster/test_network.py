"""Unit tests for the network and disk cost models."""

import pytest

from repro.cluster.network import DiskModel, NetworkModel


class TestNetworkModel:
    def test_bandwidth_conversion(self):
        assert NetworkModel(bandwidth_mbps=800.0).bandwidth_mb_per_s == pytest.approx(100.0)

    def test_transfer_time_includes_latency(self):
        net = NetworkModel(bandwidth_mbps=800.0, latency_s=0.01)
        assert net.transfer_time(50.0) == pytest.approx(0.01 + 0.5)

    def test_zero_size_is_free(self):
        assert NetworkModel().transfer_time(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_mbps=0.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-0.1)


class TestMessageTime:
    def test_latency_plus_kilobyte_scaled_bandwidth(self):
        net = NetworkModel(bandwidth_mbps=800.0, latency_s=0.01)
        # 1024 KB = 1 MB at 100 MB/s -> 10 ms on the wire.
        assert net.message_time(1024.0) == pytest.approx(0.01 + 0.01)

    def test_default_message_is_latency_dominated(self):
        net = NetworkModel(bandwidth_mbps=500.0, latency_s=0.001)
        t = net.message_time()
        assert t == pytest.approx(0.001, rel=0.02)
        assert t > net.latency_s

    def test_empty_rpc_still_pays_latency(self):
        # Unlike transfer_time, a zero-byte message crosses the wire.
        net = NetworkModel(latency_s=0.05)
        assert net.transfer_time(0.0) == 0.0
        assert net.message_time(0.0) == pytest.approx(0.05)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().message_time(-0.5)


class TestDiskModel:
    def test_read_time_includes_seek(self):
        disk = DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.005)
        assert disk.read_time(20.0) == pytest.approx(0.005 + 0.2)

    def test_write_time_aliases_read(self):
        disk = DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.005)
        assert disk.write_time(20.0) == disk.read_time(20.0)

    def test_zero_size_is_free(self):
        assert DiskModel().read_time(0.0) == 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            DiskModel(bandwidth_mb_per_s=-5.0)
