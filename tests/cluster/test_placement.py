"""Placement schemes over a dynamic node set.

The unit tests pin the two schemes' contracts (stride == legacy modulo,
rendezvous determinism, membership bookkeeping); the hypothesis suite
asserts the property elastic caching depends on: under rendezvous
placement a partition's home NEVER changes on a join, and on a leave
only the departed node's partitions move.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import (
    PLACEMENTS,
    RendezvousPlacement,
    StridePlacement,
    build_placement,
)

PARTITIONS = range(24)


# ----------------------------------------------------------------------
# construction and membership bookkeeping (scheme-independent)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PLACEMENTS)
def test_build_placement_by_name(name):
    policy = build_placement(name, [0, 1, 2])
    assert policy.name == name
    assert policy.live_node_ids == [0, 1, 2]


def test_build_placement_unknown_name():
    with pytest.raises(ValueError, match="placement must be one of"):
        build_placement("consistent", [0, 1])


@pytest.mark.parametrize("name", PLACEMENTS)
def test_needs_at_least_one_node(name):
    with pytest.raises(ValueError, match="at least one live node"):
        build_placement(name, [])


@pytest.mark.parametrize("name", PLACEMENTS)
def test_live_set_kept_sorted(name):
    policy = build_placement(name, [3, 0, 2])
    assert policy.live_node_ids == [0, 2, 3]
    policy.node_joined(1)
    assert policy.live_node_ids == [0, 1, 2, 3]
    policy.node_left(2)
    assert policy.live_node_ids == [0, 1, 3]


@pytest.mark.parametrize("name", PLACEMENTS)
def test_join_of_live_node_rejected(name):
    policy = build_placement(name, [0, 1])
    with pytest.raises(ValueError, match="already live"):
        policy.node_joined(1)


@pytest.mark.parametrize("name", PLACEMENTS)
def test_leave_of_unknown_node_rejected(name):
    policy = build_placement(name, [0, 1])
    with pytest.raises(ValueError, match="not live"):
        policy.node_left(7)


@pytest.mark.parametrize("name", PLACEMENTS)
def test_last_node_cannot_leave(name):
    policy = build_placement(name, [4])
    with pytest.raises(ValueError, match="last live node"):
        policy.node_left(4)


@pytest.mark.parametrize("name", PLACEMENTS)
def test_place_always_returns_a_live_node(name):
    policy = build_placement(name, [1, 3, 5])
    for p in PARTITIONS:
        assert policy.place(p) in (1, 3, 5)


# ----------------------------------------------------------------------
# stride: the legacy modulo mapping, generalized
# ----------------------------------------------------------------------
def test_stride_matches_legacy_modulo_on_contiguous_nodes():
    """With nodes 0..n-1 (the static case) stride must be byte-identical
    to the original ``p % num_nodes`` — the static-membership guardrail
    at the placement layer."""
    policy = StridePlacement([0, 1, 2, 3])
    for p in PARTITIONS:
        assert policy.place(p) == p % 4


def test_stride_strides_over_the_live_set():
    policy = StridePlacement([2, 5, 9])
    assert [policy.place(p) for p in range(6)] == [2, 5, 9, 2, 5, 9]


def test_stride_reshuffles_on_membership_change():
    """The known weakness rendezvous exists to fix: a stride join moves
    homes wholesale."""
    policy = StridePlacement([0, 1, 2])
    before = {p: policy.place(p) for p in PARTITIONS}
    policy.node_joined(3)
    after = {p: policy.place(p) for p in PARTITIONS}
    assert before != after


# ----------------------------------------------------------------------
# rendezvous: deterministic and sticky
# ----------------------------------------------------------------------
def test_rendezvous_deterministic_across_instances():
    a = RendezvousPlacement([0, 1, 2, 3])
    b = RendezvousPlacement([0, 1, 2, 3])
    assert [a.place(p) for p in PARTITIONS] == [b.place(p) for p in PARTITIONS]


def test_rendezvous_independent_of_resolution_order():
    """Pinning must not depend on which partition asks first."""
    a = RendezvousPlacement([0, 1, 2, 3])
    b = RendezvousPlacement([0, 1, 2, 3])
    forward = {p: a.place(p) for p in PARTITIONS}
    backward = {p: b.place(p) for p in reversed(PARTITIONS)}
    assert forward == backward


def test_rendezvous_spreads_partitions():
    """Not a balance guarantee, just a sanity floor: 64 partitions over
    4 nodes should not all land on one node."""
    policy = RendezvousPlacement([0, 1, 2, 3])
    homes = {policy.place(p) for p in range(64)}
    assert len(homes) == 4


def test_rendezvous_join_never_moves_placed_partitions():
    policy = RendezvousPlacement([0, 1, 2])
    before = {p: policy.place(p) for p in PARTITIONS}
    policy.node_joined(3)
    assert {p: policy.place(p) for p in PARTITIONS} == before


def test_rendezvous_leave_moves_only_the_departed_nodes_partitions():
    policy = RendezvousPlacement([0, 1, 2, 3])
    before = {p: policy.place(p) for p in PARTITIONS}
    policy.node_left(2)
    for p, old_home in before.items():
        new_home = policy.place(p)
        if old_home == 2:
            assert new_home != 2
        else:
            assert new_home == old_home


def test_rendezvous_unplaced_partition_resolves_over_current_live_set():
    """A partition first asked about *after* a leave must not resolve to
    the dead node."""
    policy = RendezvousPlacement([0, 1, 2, 3])
    policy.node_left(1)
    for p in range(200):
        assert policy.place(p) != 1


# ----------------------------------------------------------------------
# hypothesis: the join-stability property (the contract the engine's
# elastic cache placement is built on)
# ----------------------------------------------------------------------
_events = st.lists(
    st.tuples(st.sampled_from(["join", "leave"]), st.integers(0, 9)),
    max_size=12,
)


def _apply(policy, events):
    """Apply (kind, node) events, skipping the invalid ones, yielding
    the policy after each applied event."""
    for kind, node in events:
        live = policy.live_node_ids
        if kind == "join":
            if node in live:
                continue
            policy.node_joined(node)
        else:
            if node not in live or len(live) <= 1:
                continue
            policy.node_left(node)
        yield kind, node


@settings(max_examples=200, deadline=None)
@given(
    partitions=st.lists(st.integers(0, 499), min_size=1, max_size=30, unique=True),
    initial=st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
    events=_events,
)
def test_rendezvous_partitions_move_only_when_their_home_leaves(
    partitions, initial, events
):
    """Satellite property: across ANY membership history, a placed
    partition's home changes only when that exact home leaves — never on
    a join, and never on another node's departure."""
    policy = RendezvousPlacement(initial)
    homes = {p: policy.place(p) for p in partitions}
    for kind, node in _apply(policy, events):
        for p, old_home in homes.items():
            new_home = policy.place(p)
            if kind == "leave" and old_home == node:
                assert new_home != node
                homes[p] = new_home  # re-pinned until *this* home leaves
            else:
                assert new_home == old_home, (
                    f"partition {p} moved {old_home} -> {new_home} "
                    f"on {kind}({node})"
                )


@settings(max_examples=100, deadline=None)
@given(
    partitions=st.lists(st.integers(0, 499), min_size=1, max_size=20, unique=True),
    initial=st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
    events=_events,
)
def test_placement_history_is_deterministic(partitions, initial, events):
    """Two policies fed the same membership *and query* history agree
    everywhere — placement is a pure function of both (pins are made at
    first resolution, so query order is part of the history)."""
    a = RendezvousPlacement(initial)
    b = RendezvousPlacement(initial)
    for p in partitions:
        a.place(p)
        b.place(p)
    applied = list(_apply(a, events))
    for kind, node in applied:
        (b.node_joined if kind == "join" else b.node_left)(node)
    assert [a.place(p) for p in partitions] == [b.place(p) for p in partitions]
