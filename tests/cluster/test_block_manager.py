"""Unit tests for the per-node block manager."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.block_manager import AccessOutcome, BlockManager
from repro.cluster.network import DiskModel
from repro.cluster.node import WorkerNode
from repro.policies.lru import LruPolicy


def blk(rdd, part, size=10.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


@pytest.fixture
def mgr():
    node = WorkerNode(
        node_id=0, num_slots=2, cache_capacity_mb=30.0,
        policy=LruPolicy(), disk_model=DiskModel(),
    )
    return BlockManager(node)


class TestInsert:
    def test_write_through_to_disk(self, mgr):
        assert mgr.insert_cached(blk(0, 0))
        assert BlockId(0, 0) in mgr.node.memory
        assert BlockId(0, 0) in mgr.node.disk
        assert mgr.stats.insertions == 1

    def test_failed_insert_still_on_disk(self, mgr):
        assert not mgr.insert_cached(blk(0, 0, size=99.0))
        assert BlockId(0, 0) not in mgr.node.memory
        assert BlockId(0, 0) in mgr.node.disk
        assert mgr.stats.failed_insertions == 1

    def test_eviction_counted(self, mgr):
        for i in range(4):  # 4 x 10MB into 30MB
            mgr.insert_cached(blk(0, i))
        assert mgr.stats.evictions == 1
        assert mgr.stats.evicted_mb == pytest.approx(10.0)


class TestAccess:
    def test_memory_hit(self, mgr):
        mgr.insert_cached(blk(0, 0))
        assert mgr.access(BlockId(0, 0)) is AccessOutcome.MEMORY_HIT
        assert mgr.stats.hits == 1

    def test_disk_read_after_eviction(self, mgr):
        for i in range(4):
            mgr.insert_cached(blk(0, i))
        assert mgr.access(BlockId(0, 0)) is AccessOutcome.DISK_READ
        assert mgr.stats.misses == 1

    def test_missing_block(self, mgr):
        assert mgr.access(BlockId(7, 7)) is AccessOutcome.MISSING
        assert mgr.stats.misses == 1

    def test_hit_ratio(self, mgr):
        mgr.insert_cached(blk(0, 0))
        mgr.access(BlockId(0, 0))
        mgr.access(BlockId(9, 9))
        assert mgr.stats.hit_ratio == pytest.approx(0.5)
        assert mgr.stats.accesses == 2


class TestPromotion:
    def test_promote_from_disk(self, mgr):
        mgr.node.disk.put(blk(0, 0))
        assert mgr.promote_from_disk(blk(0, 0))
        assert BlockId(0, 0) in mgr.node.memory

    def test_promote_absent_raises(self, mgr):
        with pytest.raises(KeyError):
            mgr.promote_from_disk(blk(0, 0))

    def test_prefetch_promotion_tracked(self, mgr):
        mgr.node.disk.put(blk(0, 0))
        mgr.promote_from_disk(blk(0, 0), prefetch=True)
        assert mgr.stats.prefetched_mb == pytest.approx(10.0)
        mgr.access(BlockId(0, 0))
        assert mgr.stats.prefetches_used == 1

    def test_prefetch_use_counted_once(self, mgr):
        mgr.node.disk.put(blk(0, 0))
        mgr.promote_from_disk(blk(0, 0), prefetch=True)
        mgr.access(BlockId(0, 0))
        mgr.access(BlockId(0, 0))
        assert mgr.stats.prefetches_used == 1
        assert mgr.stats.hits == 2


class TestPurge:
    def test_purge_removes_memory_keeps_disk(self, mgr):
        mgr.insert_cached(blk(0, 0))
        mgr.purge_block(BlockId(0, 0))
        assert BlockId(0, 0) not in mgr.node.memory
        assert BlockId(0, 0) in mgr.node.disk
        assert mgr.stats.purged == 1

    def test_purge_drop_disk(self, mgr):
        mgr.insert_cached(blk(0, 0))
        mgr.purge_block(BlockId(0, 0), drop_disk=True)
        assert BlockId(0, 0) not in mgr.node.disk

    def test_purge_skips_pinned(self, mgr):
        mgr.insert_cached(blk(0, 0))
        mgr.node.memory.pin(BlockId(0, 0))
        mgr.purge_block(BlockId(0, 0))
        assert BlockId(0, 0) in mgr.node.memory
        assert mgr.stats.purged == 0
