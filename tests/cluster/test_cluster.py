"""Unit tests for cluster configuration and assembly."""

import random

import pytest

from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.policies.lru import LruPolicy


class TestClusterConfig:
    def test_totals(self):
        cfg = ClusterConfig(num_nodes=4, slots_per_node=3, cache_mb_per_node=100.0)
        assert cfg.total_cache_mb == pytest.approx(400.0)
        assert cfg.total_slots == 12

    def test_with_cache_copies(self):
        cfg = ClusterConfig(num_nodes=4, cache_mb_per_node=100.0)
        other = cfg.with_cache(50.0)
        assert other.cache_mb_per_node == 50.0
        assert other.num_nodes == cfg.num_nodes
        assert cfg.cache_mb_per_node == 100.0  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(slots_per_node=0)
        with pytest.raises(ValueError):
            ClusterConfig(cache_mb_per_node=-1.0)


class TestBuildCluster:
    def test_one_policy_instance_per_node(self):
        cfg = ClusterConfig(num_nodes=3)
        seen = []

        def factory(node_id):
            policy = LruPolicy()
            seen.append((node_id, policy))
            return policy

        cluster = build_cluster(cfg, factory)
        assert [node_id for node_id, _ in seen] == [0, 1, 2]
        policies = {id(node.policy) for node in cluster.nodes}
        assert len(policies) == 3
        assert cluster.num_nodes == 3
        assert cluster.master.num_nodes == 3

    def test_nodes_get_config_shape(self):
        cfg = ClusterConfig(num_nodes=2, slots_per_node=5, cache_mb_per_node=77.0)
        cluster = build_cluster(cfg, lambda i: LruPolicy())
        for node in cluster.nodes:
            assert node.num_slots == 5
            assert node.memory.capacity_mb == pytest.approx(77.0)


class TestHeterogeneityRng:
    """Heterogeneity draws come from an injected seeded Random (DET001)."""

    CFG = ClusterConfig(num_nodes=6, heterogeneity=0.3, heterogeneity_seed=11)

    @staticmethod
    def _factors(cluster):
        return [node.cpu_factor for node in cluster.nodes]

    def test_same_seed_same_cluster(self):
        a = self._factors(build_cluster(self.CFG, lambda i: LruPolicy()))
        b = self._factors(build_cluster(self.CFG, lambda i: LruPolicy()))
        assert a == b
        assert len(set(a)) > 1  # the spread actually spreads

    def test_injected_rng_matches_default_seeding(self):
        default = self._factors(build_cluster(self.CFG, lambda i: LruPolicy()))
        injected = self._factors(build_cluster(
            self.CFG, lambda i: LruPolicy(),
            rng=random.Random(self.CFG.heterogeneity_seed),
        ))
        assert default == injected

    def test_different_seed_different_cluster(self):
        import dataclasses

        other = dataclasses.replace(self.CFG, heterogeneity_seed=12)
        assert self._factors(build_cluster(self.CFG, lambda i: LruPolicy())) \
            != self._factors(build_cluster(other, lambda i: LruPolicy()))

    def test_process_global_rng_untouched(self):
        random.seed(1234)
        state = random.getstate()
        build_cluster(self.CFG, lambda i: LruPolicy())
        assert random.getstate() == state
