"""Scale-down rebalance policies: which blocks a leaving node keeps.

Selection is pure (the engine performs migrations), so these are plain
unit tests over synthetic block lists and distance functions.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.rebalance import (
    REBALANCES,
    DropRebalance,
    MigrateLowestDistance,
    build_rebalance,
)


def _block(rdd_id: int, partition: int, size_mb: float = 8.0) -> Block:
    return Block(id=BlockId(rdd_id, partition), size_mb=size_mb)


BLOCKS = [_block(3, 0), _block(1, 1), _block(2, 0), _block(1, 0)]


def test_build_rebalance_by_name():
    for name in REBALANCES:
        assert build_rebalance(name).name == name


def test_build_rebalance_unknown_name():
    with pytest.raises(ValueError, match="rebalance must be one of"):
        build_rebalance("replicate")


def test_drop_selects_nothing():
    assert DropRebalance().select(BLOCKS, lambda b: 1.0) == []


def test_migrate_orders_by_distance_then_block_id():
    distances = {
        BlockId(3, 0): 5.0,
        BlockId(1, 1): 2.0,
        BlockId(2, 0): 2.0,  # ties with (1, 1): block id breaks the tie
        BlockId(1, 0): 9.0,
    }
    selected = MigrateLowestDistance().select(BLOCKS, lambda b: distances[b.id])
    assert [b.id for b in selected] == [
        BlockId(1, 1), BlockId(2, 0), BlockId(3, 0), BlockId(1, 0)
    ]


def test_migrate_unknown_distance_ranks_last_but_still_moves():
    """Distance-blind schemes return None everywhere — blind migration
    still carries the blocks, just without urgency ordering."""
    distances = {BlockId(2, 0): 1.0}
    selected = MigrateLowestDistance().select(
        BLOCKS, lambda b: distances.get(b.id)
    )
    assert selected[0].id == BlockId(2, 0)
    # The None-distance remainder is deterministic: block-id order.
    assert [b.id for b in selected[1:]] == [
        BlockId(1, 0), BlockId(1, 1), BlockId(3, 0)
    ]


def test_migrate_drops_known_dead_blocks():
    """Infinite distance = the scheme knows the block is never read
    again; it is not worth the transfer."""
    distances = {
        BlockId(3, 0): math.inf,
        BlockId(1, 1): 4.0,
        BlockId(2, 0): math.inf,
        BlockId(1, 0): 1.0,
    }
    selected = MigrateLowestDistance().select(BLOCKS, lambda b: distances[b.id])
    assert [b.id for b in selected] == [BlockId(1, 0), BlockId(1, 1)]


def test_migrate_budget_caps_selection():
    policy = MigrateLowestDistance(max_blocks=2)
    selected = policy.select(BLOCKS, lambda b: float(b.id.rdd_id))
    assert [b.id for b in selected] == [BlockId(1, 0), BlockId(1, 1)]


def test_migrate_zero_budget_moves_nothing():
    assert MigrateLowestDistance(max_blocks=0).select(BLOCKS, lambda b: 1.0) == []


def test_migrate_negative_budget_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        MigrateLowestDistance(max_blocks=-1)


def test_migrate_empty_input():
    assert MigrateLowestDistance().select([], lambda b: 1.0) == []
