"""Unit tests for the local disk store."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.disk_store import DiskStore


def blk(rdd, part, size=10.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


class TestDiskStore:
    def test_put_and_get(self):
        d = DiskStore(100.0)
        assert d.put(blk(0, 0))
        assert d.get(BlockId(0, 0)).size_mb == 10.0
        assert BlockId(0, 0) in d
        assert d.used_mb == pytest.approx(10.0)

    def test_duplicate_put_is_idempotent(self):
        d = DiskStore(100.0)
        d.put(blk(0, 0))
        assert d.put(blk(0, 0))
        assert d.used_mb == pytest.approx(10.0)
        assert len(d) == 1

    def test_full_disk_refuses(self):
        d = DiskStore(15.0)
        assert d.put(blk(0, 0))
        assert not d.put(blk(0, 1))

    def test_remove_frees_space(self):
        d = DiskStore(100.0)
        d.put(blk(0, 0))
        assert d.remove(BlockId(0, 0)).id == BlockId(0, 0)
        assert d.used_mb == 0.0
        assert d.remove(BlockId(0, 0)) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DiskStore(0.0)
