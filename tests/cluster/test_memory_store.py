"""Unit tests for the bounded memory store."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.lru import LruPolicy


def blk(rdd, part, size=10.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


@pytest.fixture
def store():
    return MemoryStore(capacity_mb=30.0, policy=LruPolicy())


class TestAccounting:
    def test_empty(self, store):
        assert len(store) == 0
        assert store.used_mb == 0.0
        assert store.free_mb == 30.0
        assert store.free_fraction == pytest.approx(1.0)

    def test_put_updates_usage(self, store):
        assert store.put(blk(0, 0)).stored
        assert store.used_mb == pytest.approx(10.0)
        assert BlockId(0, 0) in store

    def test_put_existing_is_noop(self, store):
        store.put(blk(0, 0))
        res = store.put(blk(0, 0))
        assert res.stored and not res.evicted
        assert store.used_mb == pytest.approx(10.0)

    def test_zero_capacity_refuses_everything(self):
        s = MemoryStore(0.0, LruPolicy())
        assert not s.put(blk(0, 0)).stored

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryStore(-1.0, LruPolicy())

    def test_block_bigger_than_store_refused(self, store):
        assert not store.put(blk(0, 0, size=31.0)).stored
        assert len(store) == 0

    def test_usage_never_exceeds_capacity(self, store):
        for i in range(10):
            store.put(blk(0, i, size=7.0))
        assert store.used_mb <= store.capacity_mb + 1e-9


class TestEviction:
    def test_lru_victim_evicted(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        store.put(blk(0, 2))
        store.get(BlockId(0, 0))  # freshen block 0
        res = store.put(blk(0, 3))  # needs 10MB → evict LRU = block 1
        assert res.stored
        assert [b.id for b in res.evicted] == [BlockId(0, 1)]
        assert BlockId(0, 0) in store

    def test_multiple_victims_for_large_block(self, store):
        for i in range(3):
            store.put(blk(0, i))
        res = store.put(blk(1, 0, size=25.0))
        assert res.stored
        assert len(res.evicted) == 3

    def test_remove_returns_block(self, store):
        store.put(blk(0, 0))
        removed = store.remove(BlockId(0, 0))
        assert removed is not None and removed.size_mb == 10.0
        assert store.used_mb == 0.0

    def test_remove_absent_is_none(self, store):
        assert store.remove(BlockId(9, 9)) is None


class TestPinning:
    def test_pinned_never_evicted(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        store.put(blk(0, 2))
        store.pin(BlockId(0, 0))
        res = store.put(blk(1, 0))
        assert res.stored
        assert BlockId(0, 0) in store
        assert res.evicted[0].id == BlockId(0, 1)

    def test_all_pinned_refuses_insert(self, store):
        for i in range(3):
            store.put(blk(0, i))
            store.pin(BlockId(0, i))
        assert not store.put(blk(1, 0)).stored

    def test_pin_absent_raises(self, store):
        with pytest.raises(KeyError):
            store.pin(BlockId(0, 0))

    def test_unpin_without_pin_raises(self, store):
        store.put(blk(0, 0))
        with pytest.raises(ValueError):
            store.unpin(BlockId(0, 0))

    def test_nested_pins(self, store):
        store.put(blk(0, 0))
        store.pin(BlockId(0, 0))
        store.pin(BlockId(0, 0))
        store.unpin(BlockId(0, 0))
        assert store.is_pinned(BlockId(0, 0))
        store.unpin(BlockId(0, 0))
        assert not store.is_pinned(BlockId(0, 0))

    def test_remove_pinned_raises(self, store):
        store.put(blk(0, 0))
        store.pin(BlockId(0, 0))
        with pytest.raises(ValueError):
            store.remove(BlockId(0, 0))


class TestProtect:
    def test_protected_blocks_survive(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        store.put(blk(0, 2))
        res = store.put(blk(1, 0), protect=frozenset({BlockId(0, 0)}))
        assert res.stored
        assert BlockId(0, 0) in store

    def test_everything_protected_refuses(self, store):
        ids = set()
        for i in range(3):
            store.put(blk(0, i))
            ids.add(BlockId(0, i))
        assert not store.put(blk(1, 0), protect=frozenset(ids)).stored


class TestAdmission:
    def test_admit_over_veto_blocks_insert(self, store):
        class Veto(LruPolicy):
            def admit_over(self, block, victims, store):
                return False

        s = MemoryStore(20.0, Veto())
        s.put(blk(0, 0))
        s.put(blk(0, 1))
        res = s.put(blk(1, 0))
        assert not res.stored
        assert not res.evicted
        assert len(s) == 2

    def test_admit_not_consulted_when_space_free(self, store):
        class Veto(LruPolicy):
            def admit_over(self, block, victims, store):
                return False

        s = MemoryStore(20.0, Veto())
        assert s.put(blk(0, 0)).stored

    def test_prefetch_uses_prefetch_admission(self):
        class PrefetchVeto(LruPolicy):
            def admit_prefetch_over(self, block, victims, store):
                return False

        s = MemoryStore(10.0, PrefetchVeto())
        s.put(blk(0, 0))
        assert not s.put(blk(1, 0), prefetch=True).stored
        assert s.put(blk(2, 0)).stored  # demand path unaffected


class TestGet:
    def test_get_absent_returns_none(self, store):
        assert store.get(BlockId(0, 0)) is None

    def test_get_refreshes_recency(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        store.get(BlockId(0, 0))
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(0, 1)
