"""Unit tests for the worker node and its serialized disk channel."""

import pytest

from repro.cluster.network import DiskModel
from repro.cluster.node import WorkerNode
from repro.policies.lru import LruPolicy


def make_node(**kwargs):
    defaults = dict(
        node_id=0,
        num_slots=2,
        cache_capacity_mb=64.0,
        policy=LruPolicy(),
        disk_model=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
    )
    defaults.update(kwargs)
    return WorkerNode(**defaults)


class TestWorkerNode:
    def test_requires_slots(self):
        with pytest.raises(ValueError):
            make_node(num_slots=0)

    def test_policy_property(self):
        node = make_node()
        assert node.policy is node.memory.policy

    def test_io_channel_serializes(self):
        node = make_node()
        first = node.reserve_io(now=0.0, size_mb=100.0)   # 1s read
        second = node.reserve_io(now=0.0, size_mb=100.0)  # queued behind
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_io_channel_idles_until_request(self):
        node = make_node()
        node.reserve_io(now=0.0, size_mb=100.0)
        later = node.reserve_io(now=5.0, size_mb=100.0)
        assert later == pytest.approx(6.0)
        assert node.io_free_at == pytest.approx(6.0)
