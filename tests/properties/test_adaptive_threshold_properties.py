"""Property tests for the AIMD prefetch-threshold controller.

The controller consumes *cumulative* issued/used counters and adjusts
the free-memory threshold by bounded multiplicative steps.  Whatever
counter sequence the cluster produces — including counter resets after
a node replacement and boundaries where nothing was issued — the
threshold must stay inside ``[lo, hi]``, and its step direction must
follow the observed waste: raise on waste, lower on consumption, hold
otherwise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import AdaptiveThresholdController

#: Arbitrary cumulative-counter walks.  Deltas may be zero (idle
#: boundary) and ``used`` may exceed ``issued`` or the counters may
#: jump backwards (a manager restart handing in fresh totals) — the
#: controller must never leave its bounds for any of it.
counter_pairs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=0, max_value=10_000)),
    min_size=1, max_size=40,
)


@given(pairs=counter_pairs)
@settings(max_examples=200, deadline=None)
def test_threshold_always_within_bounds(pairs):
    c = AdaptiveThresholdController(initial=0.25, lo=0.02, hi=0.9)
    for issued, used in pairs:
        value = c.update(issued, used)
        assert c.lo <= value <= c.hi
        assert value == c.value


@given(pairs=counter_pairs)
@settings(max_examples=200, deadline=None)
def test_step_direction_is_monotone_in_waste(pairs):
    """Each update moves the threshold the way the waste signal points.

    Relative to the previous boundary's cumulative counters: high waste
    never lowers the threshold, low waste never raises it, and a
    boundary with no new issues (including resets, where the delta goes
    non-positive) leaves it untouched.
    """
    c = AdaptiveThresholdController(initial=0.25, lo=0.02, hi=0.9)
    last_issued = last_used = 0
    for issued, used in pairs:
        before = c.value
        value = c.update(issued, used)
        d_issued = issued - last_issued
        d_used = used - last_used
        last_issued, last_used = issued, used
        if d_issued <= 0:
            assert value == before  # nothing issued (or a reset): hold
            continue
        waste = 1.0 - d_used / d_issued
        if waste >= c.waste_high:
            assert value >= before  # wasteful: never loosen
            if before < c.hi:
                assert value > before
        elif waste <= c.waste_low:
            assert value <= before  # consumed: never tighten
            if before > c.lo:
                assert value < before
        else:
            assert value == before  # dead band: hold


@given(
    pairs=counter_pairs,
    lo=st.floats(min_value=0.01, max_value=0.2),
    hi=st.floats(min_value=0.3, max_value=0.95),
    initial=st.floats(min_value=0.2, max_value=0.3),
)
@settings(max_examples=100, deadline=None)
def test_bounds_hold_for_arbitrary_configurations(pairs, lo, hi, initial):
    c = AdaptiveThresholdController(initial=initial, lo=lo, hi=hi)
    for issued, used in pairs:
        assert lo <= c.update(issued, used) <= hi
