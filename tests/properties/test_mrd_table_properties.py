"""Property-based tests: MRD_Table distance semantics."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrd_table import MrdTable
from repro.core.reference_distance import Reference


@st.composite
def reference_sets(draw):
    n = draw(st.integers(1, 30))
    refs = []
    for _ in range(n):
        seq = draw(st.integers(0, 50))
        refs.append(Reference(seq=seq, job_id=seq // 5, rdd_id=draw(st.integers(0, 5))))
    return refs


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_distances_non_negative(refs):
    t = MrdTable()
    t.add_references(refs)
    for rdd_id in t.tracked_rdd_ids():
        d = t.distance(rdd_id)
        assert d >= 0


@settings(max_examples=100, deadline=None)
@given(reference_sets(), st.integers(0, 50))
def test_advance_matches_bruteforce(refs, seq):
    """Distance after advance == min future ref − seq, computed naively."""
    t = MrdTable()
    t.add_references(refs)
    t.advance(seq, seq // 5)
    by_rdd: dict[int, list[int]] = {}
    for r in refs:
        by_rdd.setdefault(r.rdd_id, []).append(r.seq)
    for rdd_id, seqs in by_rdd.items():
        future = [s for s in seqs if s >= seq]
        expected = min(future) - seq if future else math.inf
        assert t.distance(rdd_id) == expected


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_advance_monotonically_drains(refs):
    """Advancing forward never increases the stored reference count."""
    t = MrdTable()
    t.add_references(refs)
    prev_size = t.size()
    for seq in range(0, 51, 5):
        t.advance(seq, seq // 5)
        assert t.size() <= prev_size
        prev_size = t.size()
    t.advance(51, 10)
    assert t.size() == 0
    assert set(t.dead_rdds()) == set(t.tracked_rdd_ids())


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_candidates_sorted_and_finite(refs):
    t = MrdTable()
    t.add_references(refs)
    cands = t.candidates_by_distance()
    dists = [d for d, _ in cands]
    assert dists == sorted(dists)
    assert all(math.isfinite(d) for d in dists)


class _BruteForceTable:
    """The pre-optimization MrdTable semantics, stated naively.

    Per-RDD sorted reference lists, a full scan of every list on every
    advance, ``list.pop(0)`` consumption — the executable specification
    the lazy-heap implementation must match observation for observation.
    """

    def __init__(self, metric: str = "stage") -> None:
        self._coord = 0 if metric == "stage" else 1
        self.refs: dict[int, list[tuple[int, int]]] = {}
        self.position = 0

    def add_references(self, references) -> None:
        for r in references:
            lst = self.refs.setdefault(r.rdd_id, [])
            entry = (r.seq, r.job_id)
            if entry not in lst:
                lst.append(entry)
                lst.sort()

    def track(self, rdd_id: int) -> None:
        self.refs.setdefault(rdd_id, [])

    def forget(self, rdd_id: int) -> None:
        self.refs.pop(rdd_id, None)

    def advance(self, seq: int, job_id: int) -> None:
        self.position = job_id if self._coord else seq
        for lst in self.refs.values():
            while lst and lst[0][self._coord] < self.position:
                lst.pop(0)

    def observation(self) -> tuple:
        distances = {
            rdd_id: float(lst[0][self._coord] - self.position) if lst else math.inf
            for rdd_id, lst in self.refs.items()
        }
        candidates = sorted(
            (d, r) for r, d in distances.items() if math.isfinite(d)
        )
        return (
            sorted(self.refs),
            distances,
            sorted(r for r, lst in self.refs.items() if not lst),
            candidates,
            sum(len(lst) for lst in self.refs.values()),
        )


def _observe(t: MrdTable) -> tuple:
    return (
        t.tracked_rdd_ids(),
        {r: t.distance(r) for r in t.tracked_rdd_ids()},
        t.dead_rdds(),
        t.candidates_by_distance(),
        t.size(),
    )


@st.composite
def operation_sequences(draw):
    n = draw(st.integers(1, 25))
    ops, seq = [], 0
    for _ in range(n):
        kind = draw(st.sampled_from(["add", "add", "advance", "advance",
                                     "track", "forget"]))
        if kind == "add":
            batch = [
                Reference(seq=s, job_id=s // 5, rdd_id=draw(st.integers(0, 5)))
                for s in (draw(st.integers(0, 50)) for _ in range(draw(st.integers(1, 5))))
            ]
            ops.append(("add", batch))
        elif kind == "advance":
            seq += draw(st.integers(0, 8))
            ops.append(("advance", seq))
        else:
            ops.append((kind, draw(st.integers(0, 5))))
    return ops


@settings(max_examples=120, deadline=None)
@given(operation_sequences(), st.sampled_from(["stage", "job"]))
def test_interleaved_operations_match_bruteforce(ops, metric):
    """Any interleaving of add/advance/track/forget leaves the
    lazy-heap table observationally identical to the naive model —
    including references added behind the current position and RDDs
    forgotten while their heap entries are still pending."""
    fast, model = MrdTable(metric=metric), _BruteForceTable(metric=metric)
    for kind, arg in ops:
        if kind == "add":
            fast.add_references(arg)
            model.add_references(arg)
        elif kind == "advance":
            fast.advance(arg, arg // 5)
            model.advance(arg, arg // 5)
        elif kind == "track":
            fast.track(arg)
            model.track(arg)
        else:
            fast.forget(arg)
            model.forget(arg)
        assert _observe(fast) == model.observation()


@settings(max_examples=60, deadline=None)
@given(reference_sets(), st.integers(0, 50))
def test_job_metric_is_coarser(refs, seq):
    """Jobs partition stages, so the job metric is never finer.

    Two coarsenings are possible: a finite job distance is at most the
    stage distance, and a stage-exhausted RDD (infinite stage distance)
    may *linger* at job distance 0 when its last reference sits earlier
    in the still-running job (references are only consumed at job
    boundaries under the coarse metric).
    """
    stage_t = MrdTable(metric="stage")
    job_t = MrdTable(metric="job")
    stage_t.add_references(refs)
    job_t.add_references(refs)
    stage_t.advance(seq, seq // 5)
    job_t.advance(seq, seq // 5)
    for rdd_id in stage_t.tracked_rdd_ids():
        sd = stage_t.distance(rdd_id)
        jd = job_t.distance(rdd_id)
        if math.isinf(sd):
            assert math.isinf(jd) or jd == 0.0
        else:
            assert jd <= sd
