"""Property-based tests: MRD_Table distance semantics."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrd_table import MrdTable
from repro.core.reference_distance import Reference


@st.composite
def reference_sets(draw):
    n = draw(st.integers(1, 30))
    refs = []
    for _ in range(n):
        seq = draw(st.integers(0, 50))
        refs.append(Reference(seq=seq, job_id=seq // 5, rdd_id=draw(st.integers(0, 5))))
    return refs


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_distances_non_negative(refs):
    t = MrdTable()
    t.add_references(refs)
    for rdd_id in t.tracked_rdd_ids():
        d = t.distance(rdd_id)
        assert d >= 0


@settings(max_examples=100, deadline=None)
@given(reference_sets(), st.integers(0, 50))
def test_advance_matches_bruteforce(refs, seq):
    """Distance after advance == min future ref − seq, computed naively."""
    t = MrdTable()
    t.add_references(refs)
    t.advance(seq, seq // 5)
    by_rdd: dict[int, list[int]] = {}
    for r in refs:
        by_rdd.setdefault(r.rdd_id, []).append(r.seq)
    for rdd_id, seqs in by_rdd.items():
        future = [s for s in seqs if s >= seq]
        expected = min(future) - seq if future else math.inf
        assert t.distance(rdd_id) == expected


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_advance_monotonically_drains(refs):
    """Advancing forward never increases the stored reference count."""
    t = MrdTable()
    t.add_references(refs)
    prev_size = t.size()
    for seq in range(0, 51, 5):
        t.advance(seq, seq // 5)
        assert t.size() <= prev_size
        prev_size = t.size()
    t.advance(51, 10)
    assert t.size() == 0
    assert set(t.dead_rdds()) == set(t.tracked_rdd_ids())


@settings(max_examples=100, deadline=None)
@given(reference_sets())
def test_candidates_sorted_and_finite(refs):
    t = MrdTable()
    t.add_references(refs)
    cands = t.candidates_by_distance()
    dists = [d for d, _ in cands]
    assert dists == sorted(dists)
    assert all(math.isfinite(d) for d in dists)


@settings(max_examples=60, deadline=None)
@given(reference_sets(), st.integers(0, 50))
def test_job_metric_is_coarser(refs, seq):
    """Jobs partition stages, so the job metric is never finer.

    Two coarsenings are possible: a finite job distance is at most the
    stage distance, and a stage-exhausted RDD (infinite stage distance)
    may *linger* at job distance 0 when its last reference sits earlier
    in the still-running job (references are only consumed at job
    boundaries under the coarse metric).
    """
    stage_t = MrdTable(metric="stage")
    job_t = MrdTable(metric="job")
    stage_t.add_references(refs)
    job_t.add_references(refs)
    stage_t.advance(seq, seq // 5)
    job_t.advance(seq, seq // 5)
    for rdd_id in stage_t.tracked_rdd_ids():
        sd = stage_t.distance(rdd_id)
        jd = job_t.distance(rdd_id)
        if math.isinf(sd):
            assert math.isinf(jd) or jd == 0.0
        else:
            assert jd <= sd
