"""Property-based tests: DAG-builder invariants on random programs."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import ApplicationDAG, build_dag

# ----------------------------------------------------------------------
# random program generator
# ----------------------------------------------------------------------
#: One program step: (op, arg) applied to a randomly chosen existing RDD.
_STEP = st.sampled_from(
    ["map", "filter", "reduce_by_key", "group_by_key", "join", "union",
     "cache", "action", "unpersist"]
)


@st.composite
def programs(draw) -> SparkApplication:
    """A random but well-formed application with ≥1 job."""
    ctx = SparkContext("random")
    rdds = [ctx.text_file("in", size_mb=16.0, num_partitions=4)]
    cached: list = []
    steps = draw(st.lists(_STEP, min_size=3, max_size=30))
    for op in steps:
        src = rdds[draw(st.integers(0, len(rdds) - 1))]
        if op == "map":
            rdds.append(src.map())
        elif op == "filter":
            rdds.append(src.filter())
        elif op == "reduce_by_key":
            rdds.append(src.reduce_by_key())
        elif op == "group_by_key":
            rdds.append(src.group_by_key())
        elif op == "join":
            other = rdds[draw(st.integers(0, len(rdds) - 1))]
            rdds.append(src.join(other, num_partitions=4))
        elif op == "union":
            other = rdds[draw(st.integers(0, len(rdds) - 1))]
            rdds.append(src.union(other))
        elif op == "cache":
            src.cache()
            cached.append(src)
        elif op == "action":
            src.count()
        elif op == "unpersist" and cached and ctx.jobs:
            victim = cached.pop(draw(st.integers(0, len(cached) - 1)))
            if victim.is_cached:
                ctx.unpersist(victim)
    rdds[-1].collect()  # guarantee at least one job
    return SparkApplication(ctx)


def stage_graph(dag: ApplicationDAG) -> nx.DiGraph:
    g = nx.DiGraph()
    for stage in dag.stages:
        g.add_node(stage.id)
        for pid in stage.parent_stage_ids:
            g.add_edge(pid, stage.id)
    return g


@settings(max_examples=60, deadline=None)
@given(programs())
def test_stage_graph_is_acyclic(app):
    dag = build_dag(app)
    assert nx.is_directed_acyclic_graph(stage_graph(dag))


@settings(max_examples=60, deadline=None)
@given(programs())
def test_stage_ids_topologically_consistent(app):
    dag = build_dag(app)
    for stage in dag.stages:
        assert all(pid < stage.id for pid in stage.parent_stage_ids)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_active_seq_contiguous(app):
    dag = build_dag(app)
    assert [s.seq for s in dag.active_stages] == list(range(dag.num_active_stages))
    for stage in dag.stages:
        assert stage.is_active == (stage.seq >= 0)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_every_job_has_an_active_result_stage(app):
    dag = build_dag(app)
    for job in dag.jobs:
        result_stages = [
            dag.stage(sid) for sid in job.active_stage_ids if dag.stage(sid).is_result
        ]
        assert len(result_stages) == 1


@settings(max_examples=60, deadline=None)
@given(programs())
def test_references_never_precede_creation(app):
    dag = build_dag(app)
    for prof in dag.profiles.values():
        if prof.created_seq < 0:
            assert not prof.read_seqs
            continue
        assert all(s >= prof.created_seq for s in prof.read_seqs)
        assert all(j >= prof.created_job for j in prof.read_jobs)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_distance_gaps_non_negative(app):
    dag = build_dag(app)
    for prof in dag.profiles.values():
        assert all(g >= 0 for g in prof.stage_gaps())
        assert all(g >= 0 for g in prof.job_gaps())
        assert all(g >= 0 for g in prof.active_stage_gaps())


@settings(max_examples=60, deadline=None)
@given(programs())
def test_skipped_stages_only_when_shuffle_materialized(app):
    """A stage can only be skipped if an earlier active stage (or earlier
    job) materialized its shuffle output or its outputs are reachable
    through cached data — which implies it is never a result stage."""
    dag = build_dag(app)
    for stage in dag.stages:
        if stage.skipped:
            assert stage.shuffle_dep is not None


@settings(max_examples=40, deadline=None)
@given(programs())
def test_builder_is_deterministic(app):
    a = build_dag(app)
    b = build_dag(app)
    assert a.num_stages == b.num_stages
    assert [s.seq for s in a.stages] == [s.seq for s in b.stages]
    assert {r: p.read_seqs for r, p in a.profiles.items()} == {
        r: p.read_seqs for r, p in b.profiles.items()
    }
