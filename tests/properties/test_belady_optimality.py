"""Property: Belady's MIN dominates online policies on uniform traces.

A miniature single-node cache simulation over random block-access
traces (uniform block sizes).  For each trace we precompute the exact
future-access positions — a stage-granular oracle exactly like the
simulator's — and check that MIN's hit count is at least that of LRU,
FIFO and Random.  This is the classical optimality result and validates
both the Belady implementation and the store/eviction plumbing it runs
on.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.base import EvictionPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.lru import LruPolicy
from repro.policies.random_policy import RandomPolicy


class _TraceMin(EvictionPolicy):
    """MIN over an explicit access trace (block-level oracle)."""

    name = "trace-min"

    def __init__(self, trace: list[int]) -> None:
        self.trace = trace
        self.pos = 0

    def on_insert(self, block) -> None:
        pass

    def on_access(self, block) -> None:
        pass

    def on_remove(self, block_id) -> None:
        pass

    def _next_use(self, bid: BlockId) -> float:
        for i in range(self.pos, len(self.trace)):
            if self.trace[i] == bid.rdd_id:
                return i
        return float("inf")

    def eviction_order(self, store):
        return iter(sorted(store.block_ids(), key=lambda b: -self._next_use(b)))


def run_trace(trace: list[int], policy: EvictionPolicy, capacity: int) -> int:
    """Replay ``trace`` through a store of ``capacity`` unit blocks."""
    store = MemoryStore(float(capacity), policy)
    hits = 0
    for i, block_num in enumerate(trace):
        if isinstance(policy, _TraceMin):
            policy.pos = i + 1  # future = strictly after this access
        bid = BlockId(block_num, 0)
        if bid in store:
            hits += 1
            store.get(bid)
        else:
            store.put(Block(id=bid, size_mb=1.0))
    return hits


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(0, 9), min_size=5, max_size=80),
    st.integers(2, 6),
)
def test_min_dominates_online_policies(trace, capacity):
    min_hits = run_trace(trace, _TraceMin(trace), capacity)
    for policy in (LruPolicy(), FifoPolicy(), RandomPolicy(seed=11)):
        online_hits = run_trace(trace, policy, capacity)
        assert min_hits >= online_hits, (
            f"MIN ({min_hits}) lost to {policy.name} ({online_hits}) on {trace}"
        )


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=5, max_size=60))
def test_all_policies_equal_with_ample_capacity(trace):
    """With capacity ≥ distinct blocks there are no evictions at all."""
    capacity = len(set(trace))
    expected = len(trace) - capacity  # every first touch misses
    for policy in (_TraceMin(trace), LruPolicy(), FifoPolicy()):
        assert run_trace(trace, policy, capacity) == expected
