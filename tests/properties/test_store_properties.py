"""Property-based tests: memory-store invariants under random op streams."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.fifo import FifoPolicy
from repro.policies.lru import LruPolicy
from repro.policies.random_policy import RandomPolicy

POLICIES = [LruPolicy, FifoPolicy, lambda: RandomPolicy(seed=3)]

#: (op, rdd, part, size) — sizes are small relative to 32 MB capacity.
_OPS = st.tuples(
    st.sampled_from(["put", "get", "remove", "pin", "unpin"]),
    st.integers(0, 3),
    st.integers(0, 7),
    st.floats(0.5, 12.0),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(_OPS, max_size=60), st.sampled_from(POLICIES))
def test_store_invariants(ops, policy_factory):
    store = MemoryStore(32.0, policy_factory())
    pinned: dict[BlockId, int] = {}
    for op, rdd, part, size in ops:
        bid = BlockId(rdd, part)
        if op == "put":
            result = store.put(Block(id=bid, size_mb=size))
            for evicted in result.evicted:
                # Pinned blocks are never evicted.
                assert pinned.get(evicted.id, 0) == 0
        elif op == "get":
            block = store.get(bid)
            assert (block is not None) == (bid in store)
        elif op == "remove":
            if not store.is_pinned(bid):
                store.remove(bid)
        elif op == "pin":
            if bid in store:
                store.pin(bid)
                pinned[bid] = pinned.get(bid, 0) + 1
        elif op == "unpin":
            if pinned.get(bid, 0) > 0:
                store.unpin(bid)
                pinned[bid] -= 1
        # Core invariants after every operation:
        assert store.used_mb <= store.capacity_mb + 1e-9
        assert abs(store.used_mb - sum(b.size_mb for b in store.blocks())) < 1e-6
        assert 0 <= len(store)
        for pinned_bid, count in pinned.items():
            if count > 0:
                assert pinned_bid in store


@settings(max_examples=50, deadline=None)
@given(st.lists(_OPS, max_size=40), st.sampled_from(POLICIES))
def test_policy_metadata_consistent_with_store(ops, policy_factory):
    """The policy's eviction order always enumerates exactly the contents."""
    store = MemoryStore(32.0, policy_factory())
    for op, rdd, part, size in ops:
        bid = BlockId(rdd, part)
        if op == "put":
            store.put(Block(id=bid, size_mb=size))
        elif op == "get":
            store.get(bid)
        elif op == "remove":
            store.remove(bid)
    order = list(store.policy.eviction_order(store))
    assert sorted(order) == sorted(store.block_ids())
