"""Property-based tests: end-to-end simulator invariants.

Random applications (synthetic generator) × random cache sizes ×
policies: whatever the configuration, the accounting must balance and
the run must be deterministic.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import DiskModel, NetworkModel
from repro.core.policy import MrdScheme
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import BeladyScheme, LrcScheme, LruScheme
from repro.simulator.engine import SparkSimulator
from repro.workloads.synthetic import SyntheticConfig, generate_application

SCHEMES = [LruScheme, LrcScheme, BeladyScheme, MrdScheme,
           lambda: MrdScheme(mode="adhoc")]


def small_cluster(cache_mb: float) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=2,
        slots_per_node=2,
        cache_mb_per_node=cache_mb,
        network=NetworkModel(bandwidth_mbps=800.0, latency_s=0.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
    )


@st.composite
def scenarios(draw):
    seed = draw(st.integers(0, 30))
    cache = draw(st.floats(4.0, 200.0))
    scheme_factory = draw(st.sampled_from(SCHEMES))
    cfg = SyntheticConfig(num_jobs=draw(st.integers(2, 8)), partitions=8)
    return seed, cache, scheme_factory, cfg


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_accounting_invariants(scenario):
    seed, cache, scheme_factory, cfg = scenario
    dag = build_dag(generate_application(seed, cfg))
    sim = SparkSimulator(dag, small_cluster(cache), scheme_factory())
    metrics = sim.run()
    stats = metrics.stats

    # Every active stage executed exactly once, in order, gap-free.
    assert metrics.num_stages_executed == dag.num_active_stages
    for prev, cur in zip(metrics.stage_records, metrics.stage_records[1:]):
        assert cur.start == prev.end
        assert cur.seq == prev.seq + 1

    # Access accounting balances against the static reference profile:
    # striding tasks cover each partition of each read RDD exactly once.
    expected_accesses = sum(
        r.num_partitions for s in dag.active_stages for r in s.cache_reads
    )
    assert stats.accesses == expected_accesses
    assert stats.hits + stats.misses == stats.accesses
    assert stats.prefetches_used <= stats.prefetches_issued

    # No store exceeds capacity and all accounting is internally
    # consistent at the end of the run.
    for node in sim.cluster.nodes:
        assert node.memory.used_mb <= node.memory.capacity_mb + 1e-6
        total = sum(b.size_mb for b in node.memory.blocks())
        assert abs(node.memory.used_mb - total) < 1e-6

    # Simulated time is non-negative and finite.
    assert 0 <= metrics.jct < float("inf")


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 20), st.sampled_from(SCHEMES))
def test_runs_are_reproducible(seed, scheme_factory):
    dag = build_dag(generate_application(seed, SyntheticConfig(num_jobs=4, partitions=8)))
    cfg = small_cluster(24.0)
    a = SparkSimulator(dag, cfg, scheme_factory()).run()
    b = SparkSimulator(dag, cfg, scheme_factory()).run()
    assert a.jct == b.jct
    assert a.stats.hits == b.stats.hits
    assert a.stats.evictions == b.stats.evictions
    assert [r.end for r in a.stage_records] == [r.end for r in b.stage_records]
