"""Regenerate the synthetic Spark event-log fixtures in this directory.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/eventlogs/make_fixtures.py

The fixtures are JSON-lines files following the layout Spark's
``EventLoggingListener`` writes (the field names and nesting match real
3.x logs; values are synthetic but self-consistent).  Three application
shapes cover the ingestion paths the trace subsystem must handle:

* ``iterative_ml.jsonl`` — a cached training set re-read by every
  iteration job; narrow-only stages (the MLlib gradient-descent shape).
* ``linear_agg.jsonl`` — textFile → cached map → per-job reduceByKey
  shuffles (the quickstart shape: two stages per job).
* ``shared_lineage.jsonl`` — a second job reuses the first job's
  shuffle output, so its map stage appears in the job's DAG but is
  never submitted (Spark's skipped-stage behaviour), plus an
  ``UnpersistRDD`` event between jobs.

Deterministic: timestamps advance on a fixed cadence from a fixed
epoch, so regenerating produces byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path

HERE = Path(__file__).resolve().parent
SPARK_VERSION = "3.5.1"
EPOCH_MS = 1_700_000_000_000  # fixed epoch; keeps regeneration stable
MB = 1024 * 1024


class LogWriter:
    """Accumulates events and tracks a fake wall clock."""

    def __init__(self, app_name: str, app_id: str) -> None:
        self.events: list[dict] = []
        self.now_ms = EPOCH_MS
        self.events.append(
            {"Event": "SparkListenerLogStart", "Spark Version": SPARK_VERSION}
        )
        # A realistic log carries topology/environment noise the parser
        # must skip; include some so the fixtures exercise that path.
        self.events.append({
            "Event": "SparkListenerEnvironmentUpdate",
            "JVM Information": {"Java Version": "17.0.9"},
            "Spark Properties": {"spark.app.name": app_name},
            "System Properties": {},
            "Classpath Entries": {},
        })
        self.events.append({
            "Event": "SparkListenerApplicationStart",
            "App Name": app_name,
            "App ID": app_id,
            "Timestamp": self.tick(),
            "User": "spark",
        })
        for i in range(2):
            self.events.append({
                "Event": "SparkListenerExecutorAdded",
                "Timestamp": self.tick(),
                "Executor ID": str(i),
                "Executor Info": {"Host": f"worker-{i}", "Total Cores": 4},
            })
            self.events.append({
                "Event": "SparkListenerBlockManagerAdded",
                "Block Manager ID": {
                    "Executor ID": str(i), "Host": f"worker-{i}", "Port": 43211 + i,
                },
                "Maximum Memory": 2 * 1024 * MB,
                "Timestamp": self.tick(),
            })

    def tick(self, step_ms: int = 50) -> int:
        self.now_ms += step_ms
        return self.now_ms

    # ------------------------------------------------------------------
    def rdd_info(
        self,
        rdd_id: int,
        name: str,
        parents: list[int],
        partitions: int,
        cached: bool = False,
        memory_mb: int = 0,
        callsite: str = "",
    ) -> dict:
        return {
            "RDD ID": rdd_id,
            "Name": name,
            "Scope": json.dumps({"id": str(rdd_id), "name": name}),
            "Callsite": callsite or f"{name} at Fixture.scala:{10 + rdd_id}",
            "Parent IDs": parents,
            "Storage Level": {
                "Use Disk": cached,
                "Use Memory": cached,
                "Use Off Heap": False,
                "Deserialized": cached,
                "Replication": 1,
            },
            "Barrier": False,
            "Number of Partitions": partitions,
            "Number of Cached Partitions": partitions if memory_mb else 0,
            "Memory Size": memory_mb * MB,
            "Disk Size": 0,
        }

    def stage_info(
        self,
        stage_id: int,
        name: str,
        num_tasks: int,
        rdds: list[dict],
        parent_stages: list[int],
        submitted: bool = False,
        completed: bool = False,
    ) -> dict:
        info = {
            "Stage ID": stage_id,
            "Stage Attempt ID": 0,
            "Stage Name": name,
            "Number of Tasks": num_tasks,
            "RDD Info": rdds,
            "Parent IDs": parent_stages,
            "Details": "",
            "Accumulables": [],
            "Resource Profile Id": 0,
        }
        if submitted:
            info["Submission Time"] = self.tick()
        if completed:
            info["Completion Time"] = self.tick(200)
        return info

    # ------------------------------------------------------------------
    def job_start(self, job_id: int, stage_infos: list[dict]) -> None:
        self.events.append({
            "Event": "SparkListenerJobStart",
            "Job ID": job_id,
            "Submission Time": self.tick(),
            "Stage Infos": stage_infos,
            "Stage IDs": [s["Stage ID"] for s in stage_infos],
            "Properties": {},
        })

    def run_stage(
        self, stage_info: dict, task_ms: int, bytes_read: int = 0,
        shuffle_read: int = 0,
    ) -> None:
        """Submit a stage, run its tasks, complete it."""
        submitted = dict(stage_info)
        submitted["Submission Time"] = self.tick()
        self.events.append({
            "Event": "SparkListenerStageSubmitted",
            "Stage Info": submitted,
            "Properties": {},
        })
        for task_id in range(stage_info["Number of Tasks"]):
            launch = self.tick()
            task_info = {
                "Task ID": task_id,
                "Index": task_id,
                "Attempt": 0,
                "Launch Time": launch,
                "Executor ID": str(task_id % 2),
                "Host": f"worker-{task_id % 2}",
                "Locality": "PROCESS_LOCAL",
                "Speculative": False,
                "Finish Time": launch + task_ms,
                "Failed": False,
                "Killed": False,
            }
            self.events.append({
                "Event": "SparkListenerTaskStart",
                "Stage ID": stage_info["Stage ID"],
                "Stage Attempt ID": 0,
                "Task Info": dict(task_info),
            })
            self.events.append({
                "Event": "SparkListenerTaskEnd",
                "Stage ID": stage_info["Stage ID"],
                "Stage Attempt ID": 0,
                "Task Type": "ResultTask",
                "Task End Reason": {"Reason": "Success"},
                "Task Info": task_info,
                "Task Executor Metrics": {},
                "Task Metrics": {
                    "Executor Deserialize Time": 2,
                    "Executor Run Time": task_ms,
                    "Executor CPU Time": task_ms * 1_000_000,
                    "Result Size": 1024,
                    "JVM GC Time": 0,
                    "Memory Bytes Spilled": 0,
                    "Disk Bytes Spilled": 0,
                    "Input Metrics": {
                        "Bytes Read": bytes_read,
                        "Records Read": bytes_read // 100,
                    },
                    "Output Metrics": {"Bytes Written": 0, "Records Written": 0},
                    "Shuffle Read Metrics": {
                        "Remote Blocks Fetched": 2 if shuffle_read else 0,
                        "Local Blocks Fetched": 2 if shuffle_read else 0,
                        "Remote Bytes Read": shuffle_read // 2,
                        "Local Bytes Read": shuffle_read - shuffle_read // 2,
                        "Fetch Wait Time": 0,
                    },
                    "Shuffle Write Metrics": {
                        "Shuffle Bytes Written": 0,
                        "Shuffle Write Time": 0,
                        "Shuffle Records Written": 0,
                    },
                },
            })
        completed = dict(stage_info)
        completed["Submission Time"] = submitted["Submission Time"]
        completed["Completion Time"] = self.tick(100)
        self.events.append({
            "Event": "SparkListenerStageCompleted",
            "Stage Info": completed,
        })

    def job_end(self, job_id: int) -> None:
        self.events.append({
            "Event": "SparkListenerJobEnd",
            "Job ID": job_id,
            "Completion Time": self.tick(),
            "Job Result": {"Result": "JobSucceeded"},
        })

    def unpersist(self, rdd_id: int) -> None:
        self.events.append({
            "Event": "SparkListenerUnpersistRDD",
            "RDD ID": rdd_id,
        })

    def finish(self, path: Path) -> None:
        self.events.append({
            "Event": "SparkListenerApplicationEnd",
            "Timestamp": self.tick(),
        })
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, separators=(", ", ": ")) + "\n")
        print(f"wrote {path.name}: {len(self.events)} events")


# ----------------------------------------------------------------------
def iterative_ml(iterations: int = 3) -> LogWriter:
    """Cached training set re-read by every iteration job (narrow only)."""
    log = LogWriter("IterativeML", "app-20231114-0001")
    parts = 4
    next_stage = 0
    for it in range(iterations):
        rid = 2 + it  # per-iteration gradient RDD
        rdds = [
            log.rdd_info(0, "hadoop textFile", [], parts,
                         callsite="textFile at IterativeML.scala:12"),
            log.rdd_info(1, "training points", [0], parts, cached=True,
                         memory_mb=64 if it else 0),
            log.rdd_info(rid, f"gradients-{it}", [1], parts),
        ]
        stage = log.stage_info(next_stage, f"collect at iter {it}",
                               parts, rdds, [])
        log.job_start(it, [stage])
        log.run_stage(stage, task_ms=120 if it == 0 else 40,
                      bytes_read=16 * MB if it == 0 else 0)
        log.job_end(it)
        next_stage += 1
    return log


def linear_agg(jobs: int = 2) -> LogWriter:
    """textFile → cached map → per-job reduceByKey (two stages per job)."""
    log = LogWriter("LinearAgg", "app-20231114-0002")
    parts = 4
    next_stage = 0
    for j in range(jobs):
        shuffled = 2 + 2 * j
        counted = shuffled + 1
        base = [
            log.rdd_info(0, "hadoop textFile", [], parts,
                         callsite="textFile at LinearAgg.scala:8"),
            log.rdd_info(1, "parsed records", [0], parts, cached=True,
                         memory_mb=96 if j else 0),
        ]
        map_stage = log.stage_info(next_stage, f"map at job {j}",
                                   parts, base, [])
        reduce_rdds = [
            log.rdd_info(shuffled, f"shuffled-{j}", [1], parts),
            log.rdd_info(counted, f"aggregated-{j}", [shuffled], parts),
        ]
        reduce_stage = log.stage_info(next_stage + 1, f"count at job {j}",
                                      parts, reduce_rdds, [next_stage])
        log.job_start(j, [map_stage, reduce_stage])
        log.run_stage(map_stage, task_ms=80 if j == 0 else 30,
                      bytes_read=32 * MB if j == 0 else 0)
        log.run_stage(reduce_stage, task_ms=25, shuffle_read=8 * MB)
        log.job_end(j)
        next_stage += 2
    return log


def shared_lineage() -> LogWriter:
    """Job 1 reuses job 0's shuffle output: its map stage is skipped."""
    log = LogWriter("SharedLineage", "app-20231114-0003")
    parts = 4
    base = [
        log.rdd_info(0, "hadoop textFile", [], parts,
                     callsite="textFile at SharedLineage.scala:9"),
        log.rdd_info(1, "edges", [0], parts, cached=True),
    ]
    map_stage = log.stage_info(0, "map at SharedLineage.scala:14", parts, base, [])
    first_result = [
        log.rdd_info(2, "grouped", [1], parts),
        log.rdd_info(3, "degrees", [2], parts),
    ]
    result_stage = log.stage_info(1, "count at SharedLineage.scala:15",
                                  parts, first_result, [0])
    log.job_start(0, [map_stage, result_stage])
    log.run_stage(map_stage, task_ms=60, bytes_read=24 * MB)
    log.run_stage(result_stage, task_ms=20, shuffle_read=6 * MB)
    log.job_end(0)

    # Job 1: a different reduction over the SAME shuffle output.  The
    # job's DAG still contains the map stage (with fresh ids), but Spark
    # never submits it — its shuffle files already exist.
    skipped_map = log.stage_info(2, "map at SharedLineage.scala:14",
                                 parts, list(base), [])
    second_result = [
        log.rdd_info(2, "grouped", [1], parts),
        log.rdd_info(4, "ranks", [2], parts),
    ]
    final_stage = log.stage_info(3, "collect at SharedLineage.scala:21",
                                 parts, second_result, [2])
    log.job_start(1, [skipped_map, final_stage])
    log.run_stage(final_stage, task_ms=20, shuffle_read=6 * MB)
    log.job_end(1)
    log.unpersist(1)
    return log


def main() -> None:
    iterative_ml().finish(HERE / "iterative_ml.jsonl")
    linear_agg().finish(HERE / "linear_agg.jsonl")
    shared_lineage().finish(HERE / "shared_lineage.jsonl")


if __name__ == "__main__":
    main()
