"""Public-API consistency checks.

Guards against export drift: everything listed in each package's
``__all__`` must exist, the CLI's scheme registry must stay in sync
with the policy package, and the paper's core vocabulary must remain
importable from the documented locations.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.dag",
    "repro.cluster",
    "repro.policies",
    "repro.core",
    "repro.control",
    "repro.simulator",
    "repro.tenancy",
    "repro.workloads",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


def test_all_lists_are_sorted():
    for package in PACKAGES:
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        assert list(exported) == sorted(exported), f"{package}.__all__ unsorted"


def test_cli_schemes_construct():
    from repro.cli import SCHEME_FACTORIES
    from repro.policies import CacheScheme

    for name, factory in SCHEME_FACTORIES.items():
        scheme = factory()
        assert isinstance(scheme, CacheScheme), name


def test_paper_vocabulary_importable():
    """The names a reader of the paper would look for."""
    from repro.core import (  # noqa: F401
        AppProfiler,
        CacheMonitor,
        MrdManager,
        MrdScheme,
        MrdTable,
    )
    from repro.policies import (  # noqa: F401
        BeladyScheme,
        LrcScheme,
        LruScheme,
        MemTuneScheme,
    )
    from repro.simulator import (  # noqa: F401
        LRC_CLUSTER,
        MAIN_CLUSTER,
        MEMTUNE_CLUSTER,
        simulate,
    )


def test_version_matches_pyproject():
    import pathlib

    import repro

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    assert f'version = "{repro.__version__}"' in pyproject.read_text()
