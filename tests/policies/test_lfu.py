"""Unit tests for the LFU control baseline."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.lfu import LfuPolicy


def blk(rdd, part, size=1.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


@pytest.fixture
def store():
    return MemoryStore(100.0, LfuPolicy())


class TestLfu:
    def test_least_frequent_evicted_first(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        for _ in range(3):
            store.get(BlockId(0, 0))
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(0, 1)

    def test_tie_broken_by_recency(self, store):
        store.put(blk(0, 0))
        store.put(blk(0, 1))
        store.get(BlockId(0, 0))
        store.get(BlockId(0, 1))  # equal frequency, 1 is fresher
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(0, 0)

    def test_frequency_survives_eviction(self):
        policy = LfuPolicy()
        store = MemoryStore(2.0, policy)
        store.put(blk(0, 0))
        for _ in range(5):
            store.get(BlockId(0, 0))
        store.put(blk(0, 1))
        store.put(blk(0, 2))  # evicts the less-frequent block 1
        assert BlockId(0, 0) in store
        assert policy.frequency(BlockId(0, 0)) == 6

    def test_frequency_counts_insert_and_access(self, store):
        store.put(blk(0, 0))
        store.get(BlockId(0, 0))
        assert store.policy.frequency(BlockId(0, 0)) == 2

    def test_ossification_weakness(self, store):
        """A long-dead block with history outlives fresh single-use data.

        This is LFU's documented failure mode on DAG workloads — the
        reason the paper's lineage-aware metrics exist.
        """
        store.put(blk(0, 0))
        for _ in range(10):
            store.get(BlockId(0, 0))  # hot in the past, dead from now on
        store.put(blk(1, 0))
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(1, 0)  # the fresh block goes first
