"""Unit tests for LRC, MemTune and Belady eviction behaviour."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.policies.belady import BeladyPolicy
from repro.policies.lrc import LrcPolicy
from repro.policies.memtune import MemTunePolicy
from repro.policies.profile_oracle import ProfileOracle


def blk(rdd, part, size=1.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


def three_rdd_app():
    """RDDs with distinct reference futures.

    a: read in jobs 1, 2, 3 (3 refs); b: read in job 2 only (1 ref, later);
    c: never re-read (0 refs).
    """
    ctx = SparkContext("three")
    a = ctx.text_file("a", 8, 2).map(name="a").cache()
    b = a.map(name="b").cache()
    c = a.map(name="c").cache()
    b.union(c).count()                       # job 0 computes a, b and c
    a.map_partitions(name="ra1").collect()   # job 1 reads a
    b.map_partitions(name="rb").collect()    # job 2 reads b
    a.map_partitions(name="ra2").collect()   # job 3 reads a
    a.map_partitions(name="ra3").collect()   # job 4 reads a
    return SparkApplication(ctx)


@pytest.fixture
def oracle():
    return ProfileOracle(build_dag(three_rdd_app()))


def ids_by_name(oracle):
    return {p.rdd.name: p.rdd.id for p in oracle.dag.profiles.values()}


class TestLrc:
    def test_lowest_count_evicted_first(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(100.0, LrcPolicy(oracle))
        for name in ("a", "b", "c"):
            store.put(blk(ids[name], 0))
        order = list(store.policy.eviction_order(store))
        # c has 0 future refs, b has 1, a has 3.
        assert order[0].rdd_id == ids["c"]
        assert order[-1].rdd_id == ids["a"]

    def test_counts_decrease_as_execution_advances(self, oracle):
        ids = ids_by_name(oracle)
        before = oracle.remaining_reference_count(ids["a"])
        oracle.advance(len(oracle.dag.active_stages) - 1)
        after = oracle.remaining_reference_count(ids["a"])
        assert after < before

    def test_ties_broken_by_recency(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(100.0, LrcPolicy(oracle))
        store.put(blk(ids["a"], 0))
        store.put(blk(ids["a"], 1))
        store.get(BlockId(ids["a"], 0))
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(ids["a"], 1)


class TestMemTune:
    def test_not_needed_soon_evicted_first(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(100.0, MemTunePolicy(oracle, lookahead=0))
        oracle.advance(1)  # stage reading a; b read only next stage
        store.put(blk(ids["a"], 0))
        store.put(blk(ids["b"], 0))
        order = list(store.policy.eviction_order(store))
        assert order[0].rdd_id == ids["b"]  # b outside the current window
        assert order[-1].rdd_id == ids["a"]

    def test_lookahead_widens_window(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(100.0, MemTunePolicy(oracle, lookahead=1))
        oracle.advance(1)  # window = stages 1-2 → both a and b needed
        store.put(blk(ids["a"], 0))
        store.put(blk(ids["b"], 0))
        store.put(blk(ids["c"], 0))
        order = list(store.policy.eviction_order(store))
        assert order[0].rdd_id == ids["c"]  # only c is outside the window

    def test_zero_lookahead_window(self, oracle):
        policy = MemTunePolicy(oracle, lookahead=0)
        assert policy._lookahead == 0

    def test_negative_lookahead_rejected(self, oracle):
        with pytest.raises(ValueError):
            MemTunePolicy(oracle, lookahead=-1)


class TestBelady:
    def test_furthest_next_use_evicted_first(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(100.0, BeladyPolicy(oracle))
        oracle.advance(1)
        for name in ("a", "b", "c"):
            store.put(blk(ids[name], 0))
        order = list(store.policy.eviction_order(store))
        # c never reused (infinite) → first; a is read right now → last.
        assert order[0].rdd_id == ids["c"]
        assert order[-1].rdd_id == ids["a"]

    def test_requires_full_trace(self):
        adhoc = ProfileOracle(build_dag(three_rdd_app()), visibility="adhoc")
        with pytest.raises(ValueError):
            BeladyPolicy(adhoc)

    def test_admission_refuses_worse_blocks(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(2.0, BeladyPolicy(oracle))
        oracle.advance(1)
        store.put(blk(ids["a"], 0))
        store.put(blk(ids["a"], 1))
        # c (never reused) must not displace a (read now).
        res = store.put(blk(ids["c"], 0))
        assert not res.stored
        assert len(store) == 2

    def test_stable_tie_break_within_rdd(self, oracle):
        ids = ids_by_name(oracle)
        store = MemoryStore(2.0, BeladyPolicy(oracle))
        store.put(blk(ids["a"], 0))
        store.put(blk(ids["a"], 1))
        # Another block of the same RDD must not churn the resident set.
        assert not store.put(blk(ids["a"], 2)).stored
