"""Property tests: batched victim selection == per-object reference walk.

The columnar batch path (:mod:`repro.policies.vectorized`) and every
policy-maintained fast order (LRU's queue walk, the CacheMonitor's
incrementally sorted order) must be byte-identical to the per-object
reference walk — on random stores with duplicate sizes and heavily
tied keys, random pins and protected sets, and distance-table
broadcasts arriving mid-stream.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore, store_mode
from repro.core.cache_monitor import TIE_BREAKERS, CacheMonitor
from repro.core.policy import PrefetchAwareLruPolicy
from repro.policies.base import BatchUnsupported
from repro.policies.fifo import FifoPolicy
from repro.policies.lfu import LfuPolicy
from repro.policies.lru import LruPolicy


class _StubManager:
    """Live-distance source for monitors built outside an engine."""

    def distance(self, rdd_id: int) -> float:
        return float(rdd_id % 3)


#: (label, factory, for_prefetch) — every policy with a batch path,
#: the three CacheMonitor tie-breakers, and the prefetch-only variant's
#: distance-ordered prefetch selection.
POLICIES = [
    ("lru", LruPolicy, False),
    ("fifo", FifoPolicy, False),
    ("lfu", LfuPolicy, False),
    *(
        (
            f"mrd-{tb}",
            lambda tb=tb: CacheMonitor(0, _StubManager(), tie_breaker=tb),
            False,
        )
        for tb in TIE_BREAKERS
    ),
    ("mrd-prefetch", lambda: PrefetchAwareLruPolicy(_StubManager()), True),
]

#: Duplicate-heavy sizes and a tiny id space force equal-key ties.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "remove", "pin"]),
        st.integers(0, 3),
        st.integers(0, 7),
        st.sampled_from([1.0, 2.0, 3.0]),
    ),
    min_size=4,
    max_size=50,
)

#: One distance per rdd id 0..3; duplicates (and inf) are deliberate.
_DISTS = st.lists(
    st.sampled_from([1.0, 2.0, 5.0, float("inf")]), min_size=4, max_size=4
)


def _apply(store: MemoryStore, op: str, rdd: int, part: int, size: float) -> None:
    bid = BlockId(rdd, part)
    if op == "put":
        store.put(Block(id=bid, size_mb=size))
    elif op == "get":
        store.get(bid)
    elif op == "remove":
        if bid in store and not store.is_pinned(bid):
            store.remove(bid)
    elif op == "pin":
        if bid in store:
            store.pin(bid)


@settings(max_examples=60, deadline=None)
@given(
    ops=_OPS,
    dist1=_DISTS,
    dist2=_DISTS,
    needed=st.floats(0.5, 40.0),
    spec=st.sampled_from(POLICIES),
    update_mid=st.booleans(),
)
def test_batch_select_matches_reference_walk(
    ops, dist1, dist2, needed, spec, update_mid
):
    _, factory, for_prefetch = spec
    policy = factory()
    store = MemoryStore(24.0, policy)
    policy.on_table_update(1, dict(enumerate(dist1)))
    for i, (op, rdd, part, size) in enumerate(ops):
        _apply(store, op, rdd, part, size)
        if update_mid and i == len(ops) // 2:
            policy.on_table_update(2, dict(enumerate(dist2)))
    protect = frozenset(list(store.block_ids())[::3])

    batched = policy.select_victims_batch(store, needed, protect, for_prefetch)
    assert not isinstance(batched, BatchUnsupported)
    walk = policy._select_victims_walk(store, needed, protect, for_prefetch)
    assert batched == walk
    # The public entry point (batch, maintained order, or queue walk,
    # whichever the policy picks) must agree with the reference too.
    assert policy.select_victims(store, needed, protect, for_prefetch) == walk


@settings(max_examples=20, deadline=None)
@given(ops=_OPS, needed=st.floats(0.5, 40.0), spec=st.sampled_from(POLICIES))
def test_object_store_never_uses_batch(ops, needed, spec):
    """``store_mode(columnar=False)`` pins policies to the reference spec."""
    _, factory, for_prefetch = spec
    policy = factory()
    with store_mode(False):
        store = MemoryStore(24.0, policy)
    policy.on_table_update(1, {r: float(r) for r in range(4)})
    for op, rdd, part, size in ops:
        _apply(store, op, rdd, part, size)
    protect = frozenset(list(store.block_ids())[::3])
    batched = policy.select_victims_batch(store, needed, protect, for_prefetch)
    assert isinstance(batched, BatchUnsupported)
    walk = policy._select_victims_walk(store, needed, protect, for_prefetch)
    assert policy.select_victims(store, needed, protect, for_prefetch) == walk
