"""Unit tests for the shared DAG-profile oracle."""

import math

import pytest

from repro.dag.dag_builder import build_dag
from repro.policies.profile_oracle import INFINITE, ProfileOracle
from tests.conftest import make_iterative_app, make_linear_app


@pytest.fixture
def linear_oracle():
    # points: created seq 0, read at seqs 1, 2, 3.
    return ProfileOracle(build_dag(make_linear_app(num_jobs=4)))


def points_id(oracle):
    (rdd_id,) = oracle.tracked_rdd_ids()
    return rdd_id


class TestRecurringQueries:
    def test_initial_distance(self, linear_oracle):
        rid = points_id(linear_oracle)
        assert linear_oracle.next_reference_seq(rid) == 1
        assert linear_oracle.stage_distance(rid) == 1

    def test_advance_consumes_references(self, linear_oracle):
        rid = points_id(linear_oracle)
        linear_oracle.advance(2)
        assert linear_oracle.stage_distance(rid) == 0  # read at seq 2
        assert linear_oracle.remaining_reference_count(rid) == 2  # seqs 2, 3

    def test_exhausted_is_infinite(self, linear_oracle):
        rid = points_id(linear_oracle)
        last = len(linear_oracle.dag.active_stages) - 1
        linear_oracle.advance(last)
        # The final read is at the last stage → distance 0, then dead.
        assert linear_oracle.stage_distance(rid) == 0 or math.isinf(
            linear_oracle.stage_distance(rid)
        )

    def test_unknown_rdd_is_infinite(self, linear_oracle):
        assert linear_oracle.stage_distance(999) == INFINITE
        assert linear_oracle.remaining_reference_count(999) == 0
        assert not linear_oracle.is_tracked(999)

    def test_job_distance(self, linear_oracle):
        rid = points_id(linear_oracle)
        # At seq 0 (job 0), next read is in job 1.
        assert linear_oracle.job_distance(rid) == 1

    def test_advance_out_of_range(self, linear_oracle):
        with pytest.raises(ValueError):
            linear_oracle.advance(-1)
        with pytest.raises(ValueError):
            linear_oracle.advance(10_000)


class TestAdhocVisibility:
    def test_cross_job_reference_invisible(self):
        oracle = ProfileOracle(build_dag(make_linear_app(num_jobs=4)), visibility="adhoc")
        rid = points_id(oracle)
        # At seq 0 (job 0) the next read (job 1) is invisible.
        assert oracle.stage_distance(rid) == INFINITE
        assert oracle.is_dead(rid)
        # Once execution reaches job 1, its read becomes visible.
        oracle.advance(1)
        assert oracle.stage_distance(rid) == 0

    def test_adhoc_job_distance_zero_or_infinite(self):
        oracle = ProfileOracle(build_dag(make_iterative_app()), visibility="adhoc")
        for seq in range(len(oracle.dag.active_stages)):
            oracle.advance(seq)
            for rid in oracle.tracked_rdd_ids():
                jd = oracle.job_distance(rid)
                assert jd == 0 or math.isinf(jd)

    def test_invalid_visibility(self):
        with pytest.raises(ValueError):
            ProfileOracle(build_dag(make_linear_app()), visibility="psychic")


class TestWindows:
    def test_window_contains_current_stage_reads(self):
        oracle = ProfileOracle(build_dag(make_linear_app(num_jobs=3)))
        oracle.advance(1)
        rid = points_id(oracle)
        assert rid in oracle.referenced_in_window(0)

    def test_window_lookahead(self):
        oracle = ProfileOracle(build_dag(make_linear_app(num_jobs=3)))
        # At seq 0 nothing reads points; at lookahead 1 the next stage does.
        assert oracle.referenced_in_window(0) == set()
        assert points_id(oracle) in oracle.referenced_in_window(1)

    def test_had_any_reference(self, linear_oracle):
        assert linear_oracle.had_any_reference(points_id(linear_oracle))
        assert not linear_oracle.had_any_reference(999)
