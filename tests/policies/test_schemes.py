"""Tests for the scheme layer (cluster-level policy wiring)."""

import pytest

from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.dag.dag_builder import build_dag
from repro.policies.belady import BeladyPolicy
from repro.policies.lrc import LrcPolicy
from repro.policies.lru import LruPolicy
from repro.policies.memtune import MemTunePolicy
from repro.policies.scheme import (
    BeladyScheme,
    FifoScheme,
    LfuScheme,
    LrcScheme,
    LruScheme,
    MemTuneScheme,
    RandomScheme,
    StageOrders,
)
from tests.conftest import make_iterative_app, make_linear_app


@pytest.fixture
def dag():
    return build_dag(make_linear_app(num_jobs=3))


def tiny_cluster(scheme, cache=64.0, nodes=2):
    return build_cluster(
        ClusterConfig(num_nodes=nodes, cache_mb_per_node=cache),
        scheme.policy_factory,
    )


class TestSimpleSchemes:
    @pytest.mark.parametrize(
        "scheme_cls,policy_cls",
        [(LruScheme, LruPolicy), (LrcScheme, LrcPolicy), (BeladyScheme, BeladyPolicy)],
    )
    def test_factories_produce_expected_policy(self, dag, scheme_cls, policy_cls):
        scheme = scheme_cls()
        scheme.prepare(dag)
        assert isinstance(scheme.policy_factory(0), policy_cls)

    def test_default_orders_are_empty(self, dag):
        scheme = LruScheme()
        scheme.prepare(dag)
        cluster = tiny_cluster(scheme)
        orders = scheme.on_stage_start(0, cluster)
        assert orders.purge_rdds == [] and orders.prefetches == []

    def test_oracle_schemes_share_one_oracle(self, dag):
        scheme = LrcScheme()
        scheme.prepare(dag)
        p0 = scheme.policy_factory(0)
        p1 = scheme.policy_factory(1)
        assert p0._oracle is p1._oracle

    def test_oracle_advances_with_stages(self, dag):
        scheme = LrcScheme()
        scheme.prepare(dag)
        cluster = tiny_cluster(scheme)
        scheme.on_stage_start(2, cluster)
        assert scheme.oracle.current_seq == 2

    def test_random_scheme_per_node_seeds(self, dag):
        scheme = RandomScheme(seed=3)
        scheme.prepare(dag)
        a = scheme.policy_factory(0)
        b = scheme.policy_factory(1)
        assert a is not b

    @pytest.mark.parametrize("scheme_cls", [FifoScheme, LfuScheme])
    def test_stateless_schemes_prepare_noop(self, dag, scheme_cls):
        scheme = scheme_cls()
        scheme.prepare(dag)  # must not raise
        assert scheme.policy_factory(0) is not scheme.policy_factory(0)


class TestMemTunePrefetch:
    def test_prefetches_current_stage_disk_blocks(self):
        dag = build_dag(make_iterative_app(iterations=3))
        scheme = MemTuneScheme()
        scheme.prepare(dag)
        cluster = tiny_cluster(scheme, cache=256.0)
        # Materialize some blocks on disk only.
        stage = next(s for s in dag.active_stages if s.cache_reads)
        rdd = stage.cache_reads[0]
        from repro.cluster.block import Block, BlockId

        for p in range(rdd.num_partitions):
            bid = BlockId(rdd.id, p)
            cluster.master.manager_for(bid).node.disk.put(
                Block(id=bid, size_mb=rdd.partition_size_mb)
            )
        orders = scheme.on_stage_start(stage.seq, cluster)
        assert orders.prefetches
        assert all(b.id.rdd_id == rdd.id for b in orders.prefetches)

    def test_no_prefetch_flag(self):
        dag = build_dag(make_iterative_app(iterations=3))
        scheme = MemTuneScheme(prefetch=False)
        scheme.prepare(dag)
        cluster = tiny_cluster(scheme)
        orders = scheme.on_stage_start(0, cluster)
        assert orders.prefetches == []

    def test_prefetch_respects_free_memory(self):
        dag = build_dag(make_iterative_app(iterations=3))
        scheme = MemTuneScheme()
        scheme.prepare(dag)
        cluster = tiny_cluster(scheme, cache=0.0)  # no room at all
        stage = next(s for s in dag.active_stages if s.cache_reads)
        rdd = stage.cache_reads[0]
        from repro.cluster.block import Block, BlockId

        for p in range(rdd.num_partitions):
            bid = BlockId(rdd.id, p)
            cluster.master.manager_for(bid).node.disk.put(
                Block(id=bid, size_mb=rdd.partition_size_mb)
            )
        orders = scheme.on_stage_start(stage.seq, cluster)
        assert orders.prefetches == []


class TestStageOrders:
    def test_defaults(self):
        orders = StageOrders()
        assert orders.purge_rdds == []
        assert orders.prefetches == []
