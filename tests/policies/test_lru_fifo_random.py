"""Unit tests for the DAG-oblivious baseline policies (LRU, FIFO, Random)."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.fifo import FifoPolicy
from repro.policies.lru import LruPolicy
from repro.policies.random_policy import RandomPolicy


def blk(rdd, part, size=1.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


def fill(store, n=4):
    for i in range(n):
        store.put(blk(0, i))


class TestLru:
    def test_evicts_least_recently_used(self):
        store = MemoryStore(100.0, LruPolicy())
        fill(store)
        store.get(BlockId(0, 0))
        order = list(store.policy.eviction_order(store))
        assert order[0] == BlockId(0, 1)
        assert order[-1] == BlockId(0, 0)

    def test_insert_counts_as_touch(self):
        store = MemoryStore(100.0, LruPolicy())
        fill(store)
        assert list(store.policy.eviction_order(store))[-1] == BlockId(0, 3)

    def test_removal_forgets(self):
        store = MemoryStore(100.0, LruPolicy())
        fill(store)
        store.remove(BlockId(0, 0))
        assert BlockId(0, 0) not in list(store.policy.eviction_order(store))

    def test_access_untracked_block_registers(self):
        policy = LruPolicy()
        policy.on_access(blk(0, 0))
        assert BlockId(0, 0) in list(policy._recency)


class TestFifo:
    def test_evicts_in_insertion_order(self):
        store = MemoryStore(100.0, FifoPolicy())
        fill(store)
        store.get(BlockId(0, 0))  # access must NOT matter
        order = list(store.policy.eviction_order(store))
        assert order == [BlockId(0, i) for i in range(4)]


class TestRandom:
    def test_deterministic_per_seed(self):
        s1 = MemoryStore(100.0, RandomPolicy(seed=7))
        s2 = MemoryStore(100.0, RandomPolicy(seed=7))
        fill(s1)
        fill(s2)
        assert list(s1.policy.eviction_order(s1)) == list(s2.policy.eviction_order(s2))

    def test_covers_all_blocks(self):
        store = MemoryStore(100.0, RandomPolicy(seed=1))
        fill(store, 8)
        order = list(store.policy.eviction_order(store))
        assert sorted(order) == [BlockId(0, i) for i in range(8)]

    def test_different_seeds_eventually_differ(self):
        orders = set()
        for seed in range(5):
            store = MemoryStore(100.0, RandomPolicy(seed=seed))
            fill(store, 8)
            orders.add(tuple(store.policy.eviction_order(store)))
        assert len(orders) > 1


@pytest.mark.parametrize("policy_cls", [LruPolicy, FifoPolicy])
def test_eviction_order_is_snapshot(policy_cls):
    """Mutating the store while iterating must not break iteration."""
    store = MemoryStore(100.0, policy_cls())
    fill(store, 4)
    order = store.policy.eviction_order(store)
    store.remove(BlockId(0, 2))
    assert len(list(order)) == 4  # snapshot taken before the removal
