"""Tests for the true block-level MIN oracle (two-pass)."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import BeladyScheme, LruScheme
from repro.policies.trace_min import (
    TraceMinPolicy,
    TraceMinScheme,
    record_access_trace,
    true_min_metrics,
)
from repro.simulator.engine import simulate
from tests.conftest import make_iterative_app
from tests.simulator.test_engine import small_config


def blk(rdd, part, size=1.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


class TestTraceMinPolicy:
    def test_next_use_lookup(self):
        trace = [BlockId(0, 0), BlockId(1, 0), BlockId(0, 0)]
        policy = TraceMinPolicy(trace)
        assert policy.next_use(BlockId(0, 0)) == 0
        policy.on_miss(BlockId(0, 0))  # position advances past index 0
        assert policy.next_use(BlockId(0, 0)) == 2
        assert policy.next_use(BlockId(9, 9)) == float("inf")

    def test_eviction_order_furthest_first(self):
        trace = [BlockId(0, 0), BlockId(1, 0), BlockId(2, 0), BlockId(0, 0)]
        policy = TraceMinPolicy(trace)
        store = MemoryStore(100.0, policy)
        for r in range(3):
            store.put(blk(r, 0))
        # Make position 1: block 0's next use becomes index 3.
        policy.on_miss(BlockId(0, 0))
        order = list(policy.eviction_order(store))
        # Block 2 next used at idx 2... order: furthest first. Positions:
        # b0→3, b1→1, b2→2 ⇒ order b0, b2, b1.
        assert order == [BlockId(0, 0), BlockId(2, 0), BlockId(1, 0)]

    def test_never_used_again_leads(self):
        trace = [BlockId(0, 0)]
        policy = TraceMinPolicy(trace)
        store = MemoryStore(100.0, policy)
        store.put(blk(0, 0))
        store.put(blk(5, 0))  # absent from the trace: infinite next use
        assert list(policy.eviction_order(store))[0] == BlockId(5, 0)


class TestRecordedTraces:
    @pytest.fixture(scope="class")
    def dag(self):
        return build_dag(make_iterative_app(iterations=4))

    def test_trace_covers_all_accesses(self, dag):
        cfg = small_config(cache_mb=20.0)
        traces = record_access_trace(dag, cfg)
        lru = simulate(dag, cfg, LruScheme())
        assert sum(len(t) for t in traces.values()) == lru.stats.accesses

    def test_trace_is_policy_independent_per_node(self, dag):
        """Recording twice (different cache sizes) gives the same order."""
        t1 = record_access_trace(dag, small_config(cache_mb=20.0))
        t2 = record_access_trace(dag, small_config(cache_mb=500.0))
        assert t1 == t2

    def test_true_min_dominates_lru_and_stage_belady(self, dag):
        cfg = small_config(cache_mb=20.0)
        lru = simulate(dag, cfg, LruScheme())
        belady = simulate(dag, cfg, BeladyScheme())
        tmin = true_min_metrics(dag, cfg)
        assert tmin.stats.hits >= lru.stats.hits
        assert tmin.stats.hits >= belady.stats.hits - 1  # remote-access slack

    def test_true_min_scheme_runs_standalone(self, dag):
        cfg = small_config(cache_mb=20.0)
        traces = record_access_trace(dag, cfg)
        metrics = simulate(dag, cfg, TraceMinScheme(traces))
        assert metrics.scheme == "True-MIN"
        assert metrics.jct > 0
