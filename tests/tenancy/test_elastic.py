"""Elastic membership under multi-tenancy.

Timed joins/decommissions against the shared cluster: validation,
determinism, churn accounting, the static guardrail (inert elasticity
parameters must not perturb a static run), presence bookkeeping for
late arrivals, and the decommission → rejoin cycle.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.control.plane import RpcConfig
from repro.tenancy import (
    AppSpec,
    FixedArrivals,
    MultiTenantSimulator,
    TimedNodeDecommission,
    TimedNodeJoin,
)
from tests.simulator.test_scheduler_equivalence import fingerprint

CLUSTER = ClusterConfig(num_nodes=4, slots_per_node=2, cache_mb_per_node=50.0)
KM = AppSpec(workload="KM", scheme="MRD", partitions=8)


def _mt(**kwargs) -> MultiTenantSimulator:
    apps = kwargs.pop("apps", [KM])
    return MultiTenantSimulator(apps, CLUSTER, **kwargs)


def _fingerprints(result) -> tuple:
    return (result.makespan,) + tuple(fingerprint(m) for m in result.apps)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_timed_events_validate():
    with pytest.raises(ValueError, match="non-negative"):
        TimedNodeJoin(at=-1.0)
    with pytest.raises(ValueError, match="non-negative"):
        TimedNodeJoin(at=0.0, node_id=-1)
    with pytest.raises(ValueError, match="non-negative"):
        TimedNodeDecommission(at=-0.5)
    with pytest.raises(ValueError, match="non-negative"):
        TimedNodeDecommission(at=1.0, node_id=-2)


def test_ctor_rejects_bad_elasticity_config():
    with pytest.raises(ValueError, match="unknown placement"):
        _mt(placement="consistent")
    with pytest.raises(ValueError, match="unknown rebalance"):
        _mt(rebalance="replicate")
    with pytest.raises(TypeError, match="TimedNodeJoin"):
        _mt(memberships=[("join", 5.0)])


# ----------------------------------------------------------------------
# the static guardrail and determinism
# ----------------------------------------------------------------------
def test_inert_elasticity_parameters_leave_static_runs_untouched():
    """No membership events + stride placement: the elastic code path
    must be unobservable, whatever the rebalance policy."""
    baseline = _fingerprints(_mt().run())
    inert = _fingerprints(_mt(memberships=(), rebalance="migrate").run())
    assert inert == baseline


def test_churned_run_is_deterministic():
    def once() -> tuple:
        return _fingerprints(_mt(
            apps=[KM, AppSpec(workload="PR", scheme="LRU", partitions=8)],
            arrivals=FixedArrivals(interval=10.0),
            placement="rendezvous",
            memberships=(TimedNodeJoin(at=5.0),
                         TimedNodeDecommission(at=20.0, node_id=1)),
            rebalance="migrate",
        ).run())

    assert once() == once()


def test_churned_run_is_deterministic_over_rpc():
    def once() -> tuple:
        return _fingerprints(_mt(
            placement="rendezvous",
            memberships=(TimedNodeJoin(at=5.0),
                         TimedNodeDecommission(at=20.0)),
            rebalance="migrate",
            control_plane="rpc",
            control_config=RpcConfig(latency_s=0.5),
        ).run())

    assert once() == once()


# ----------------------------------------------------------------------
# churn accounting
# ----------------------------------------------------------------------
def test_membership_counters_and_presence():
    result = _mt(
        placement="rendezvous",
        memberships=(TimedNodeJoin(at=5.0),
                     TimedNodeDecommission(at=20.0, node_id=1)),
        rebalance="migrate",
    ).run()
    (m,) = result.apps
    assert m.nodes_joined == 1
    assert m.nodes_decommissioned == 1
    assert len(m.per_node_presence) == 5  # 4 initial + the joiner
    assert all(0.0 <= p <= 1.0 for p in m.per_node_presence)
    # Node 1 left mid-run and node 4 joined mid-run: partial presence.
    assert 0.0 < m.per_node_presence[1] < 1.0
    assert 0.0 < m.per_node_presence[4] < 1.0
    # Nodes 0/2/3 were live throughout.
    for i in (0, 2, 3):
        assert m.per_node_presence[i] == 1.0


def test_drop_vs_migrate_accounting():
    memberships = (TimedNodeDecommission(at=20.0, node_id=0),)
    dropped = _mt(memberships=memberships, rebalance="drop").run().apps[0]
    migrated = _mt(memberships=memberships, rebalance="migrate").run().apps[0]
    assert dropped.decommission_dropped_blocks > 0
    assert dropped.rebalanced_blocks == 0
    assert migrated.rebalanced_blocks > 0
    assert migrated.rebalanced_mb > 0
    total = dropped.decommission_dropped_blocks
    assert (migrated.rebalanced_blocks
            + migrated.decommission_dropped_blocks) == total


def test_late_arrival_never_sees_the_dead_node():
    """An application that arrives after a decommission must run on the
    surviving nodes and report zero presence for the dead slot."""
    result = _mt(
        apps=[KM, AppSpec(workload="KM", scheme="LRU", partitions=8)],
        arrivals=FixedArrivals(interval=30.0),
        memberships=(TimedNodeDecommission(at=10.0, node_id=1),),
    ).run()
    first, late = result.apps
    assert first.nodes_decommissioned == 1
    # The late app never saw the event, only its aftermath.
    assert late.nodes_decommissioned == 0
    assert late.per_node_presence[1] == 0.0
    assert all(late.per_node_presence[i] == 1.0 for i in (0, 2, 3))
    assert late.jct > 0


def test_decommissioned_slot_can_rejoin():
    result = _mt(
        placement="rendezvous",
        memberships=(TimedNodeDecommission(at=5.0, node_id=2),
                     TimedNodeJoin(at=25.0, node_id=2)),
    ).run()
    (m,) = result.apps
    assert m.nodes_joined == 1
    assert m.nodes_decommissioned == 1
    assert len(m.per_node_presence) == 4  # the slot was reused, not grown
    # The bounced slot was absent for the middle of the run.
    assert 0.0 < m.per_node_presence[2] < 1.0
    for i in (0, 1, 3):
        assert m.per_node_presence[i] == 1.0
