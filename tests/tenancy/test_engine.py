"""Multi-tenant engine: determinism, conservation, teardown isolation."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.tenancy import (
    AppSpec,
    ArbitratedNodePolicy,
    FixedArrivals,
    MultiTenantSimulator,
    PoissonArrivals,
    mt_metrics_to_dict,
    simulate_multi_tenant,
)

CLUSTER = ClusterConfig(num_nodes=4, slots_per_node=2, cache_mb_per_node=60.0)

APPS = [
    AppSpec(workload="KM", scheme="MRD", partitions=8, seed=0),
    AppSpec(workload="PR", scheme="LRU", partitions=8, seed=1),
    AppSpec(workload="CC", scheme="MRD-prefetch", partitions=8, seed=2),
]


def run(apps=APPS, cfg=CLUSTER, **kwargs):
    return MultiTenantSimulator(apps, cfg, **kwargs)


class TestDeterminism:
    @pytest.mark.parametrize("arbitration", ["static", "maxmin", "global-mrd"])
    def test_identical_reruns(self, arbitration):
        kwargs = dict(
            arrivals=PoissonArrivals(rate=0.05, seed=9), arbitration=arbitration
        )
        a = run(**kwargs).run()
        b = run(**kwargs).run()
        assert mt_metrics_to_dict(a) == mt_metrics_to_dict(b)

    def test_arrival_seed_changes_outcome(self):
        a = run(arrivals=PoissonArrivals(rate=0.01, seed=0)).run()
        b = run(arrivals=PoissonArrivals(rate=0.01, seed=1)).run()
        assert [m.arrival_time for m in a.apps] != \
            [m.arrival_time for m in b.apps]

    def test_convenience_wrapper_matches_class(self):
        kwargs = dict(arrivals=FixedArrivals(interval=3.0), arbitration="maxmin")
        assert mt_metrics_to_dict(simulate_multi_tenant(APPS, CLUSTER, **kwargs)) \
            == mt_metrics_to_dict(run(**kwargs).run())


class TestConservation:
    def test_every_app_finishes_with_full_accounting(self):
        mt = run(arrivals=FixedArrivals(interval=2.0)).run()
        assert len(mt.apps) == len(APPS)
        assert [m.app_id for m in mt.apps] == [0, 1, 2]
        for m, spec in zip(mt.apps, APPS):
            assert m.scheme == spec.scheme
            assert m.stats.accesses == m.stats.hits + m.stats.misses
            assert m.num_stages_executed == len(m.stage_records)
            assert m.jct > 0
        assert mt.makespan == max(m.arrival_time + m.jct for m in mt.apps)
        assert mt.makespan >= max(m.jct for m in mt.apps)

    def test_arrival_times_respected(self):
        mt = run(arrivals=FixedArrivals(interval=5.0)).run()
        assert [m.arrival_time for m in mt.apps] == [0.0, 5.0, 10.0]
        # Stage records carry absolute cluster times: no stage of app k
        # starts before app k arrives, and the last one ends at
        # arrival + jct.
        for m in mt.apps:
            assert all(r.start >= m.arrival_time for r in m.stage_records)
            assert m.stage_records[-1].end == \
                pytest.approx(m.arrival_time + m.jct)

    def test_contention_only_slows_apps_down(self):
        # Staggered far apart == effectively alone; simultaneous arrival
        # shares slots, so every JCT is at least the solo JCT.
        solo = run(arrivals=FixedArrivals(interval=10_000.0)).run()
        packed = run(arrivals=FixedArrivals(interval=0.0)).run()
        for alone, crowded in zip(solo.apps, packed.apps):
            assert crowded.jct >= alone.jct


class TestIsolation:
    def test_shared_stores_empty_after_run(self):
        sim = run(arrivals=FixedArrivals(interval=1.0))
        sim.run()
        state = sim._state
        assert state is not None
        for node in state.nodes:
            assert len(node.memory) == 0

    def test_all_tenants_deregistered_after_run(self):
        sim = run(arrivals=FixedArrivals(interval=1.0))
        sim.run()
        for node in sim._state.nodes:
            policy = node.policy
            assert isinstance(policy, ArbitratedNodePolicy)
            assert policy._tenants == {}
            assert list(policy.eviction_order(node.memory)) == []


class TestValidation:
    def test_rejects_empty_app_list(self):
        with pytest.raises(ValueError):
            MultiTenantSimulator([], CLUSTER)

    def test_rejects_unknown_scheme_eagerly(self):
        with pytest.raises(ValueError):
            AppSpec(workload="KM", scheme="NOPE")

    def test_rejects_non_positive_share(self):
        with pytest.raises(ValueError):
            AppSpec(workload="KM", share=0.0)

    def test_rejects_unknown_arbitration(self):
        with pytest.raises(ValueError, match="unknown arbitration"):
            MultiTenantSimulator(APPS, CLUSTER, arbitration="fifo")

    def test_app_driver_run_is_blocked(self):
        sim = run()
        sim.run()
        with pytest.raises(RuntimeError):
            sim._state.apps[0].driver.run()
