"""Cross-application arbitration: unit tests over a shared store."""

from __future__ import annotations

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.policies.lru import LruPolicy
from repro.tenancy.arbitration import (
    RDD_NAMESPACE_STRIDE,
    ArbitratedNodePolicy,
    GlobalDistance,
    MaxMinFair,
    StaticShares,
    TenantStoreView,
    VictimCandidate,
    build_arbitration,
    namespace_of,
    owner_of,
)

STRIDE = RDD_NAMESPACE_STRIDE


def bid(app: int, rdd: int, part: int = 0) -> BlockId:
    return BlockId(app * STRIDE + rdd, part)


def block(app: int, rdd: int, part: int = 0, size: float = 10.0) -> Block:
    return Block(id=bid(app, rdd, part), size_mb=size, rdd_name=f"r{rdd}")


def make_store(arbitration="static", capacity=100.0, tenants=(0, 1), shares=None,
               distances=None):
    policy = ArbitratedNodePolicy(build_arbitration(arbitration))
    store = MemoryStore(capacity_mb=capacity, policy=policy)
    for app in tenants:
        distance_map = (distances or {}).get(app)
        policy.register_tenant(
            app,
            LruPolicy(),
            share=(shares or {}).get(app, 1.0),
            distance_of=(
                (lambda rid, m=distance_map: m.get(rid))
                if distance_map is not None
                else None
            ),
        )
    return store, policy


class TestNamespacing:
    def test_owner_and_range(self):
        assert owner_of(5) == 0
        assert owner_of(2 * STRIDE + 7) == 2
        lo, hi = namespace_of(3)
        assert lo == 3 * STRIDE and hi == 4 * STRIDE

    def test_view_filters_foreign_blocks(self):
        store, _ = make_store()
        store.put(block(0, 1))
        store.put(block(1, 1))
        view = TenantStoreView(store, 0)
        assert list(view.block_ids()) == [bid(0, 1)]
        assert len(view) == 1
        assert bid(0, 1) in view and bid(1, 1) not in view
        # Occupancy is the SHARED store's: fit decisions are physical.
        assert view.used_mb == store.used_mb == 20.0
        assert view.capacity_mb == store.capacity_mb


class TestTenantLifecycle:
    def test_duplicate_registration_rejected(self):
        _, policy = make_store(tenants=(0,))
        with pytest.raises(ValueError, match="already registered"):
            policy.register_tenant(0, LruPolicy())

    def test_non_positive_share_rejected(self):
        _, policy = make_store(tenants=(0,))
        with pytest.raises(ValueError, match="share"):
            policy.register_tenant(1, LruPolicy(), share=0.0)

    def test_usage_tracked_through_insert_and_remove(self):
        store, policy = make_store()
        store.put(block(0, 1, size=30.0))
        store.put(block(1, 1, size=20.0))
        assert policy._tenants[0].used_mb == 30.0
        assert policy._tenants[1].used_mb == 20.0
        store.remove(bid(0, 1))
        assert policy._tenants[0].used_mb == 0.0
        policy.deregister_tenant(1)
        assert 1 not in policy._tenants


class TestStaticShares:
    def test_evicts_from_heaviest_user(self):
        store, _ = make_store(capacity=100.0)
        for p in range(6):
            store.put(block(0, 1, p))   # app 0: 60 MB
        for p in range(3):
            store.put(block(1, 1, p))   # app 1: 30 MB
        result = store.put(block(1, 2, 0, size=20.0))
        assert result.stored
        # App 0 is furthest over its (equal) share: it pays.
        assert all(owner_of(b.id.rdd_id) == 0 for b in result.evicted)

    def test_share_weight_protects_a_tenant(self):
        # Same footprints, but app 0 is entitled to 3x the cache: the
        # weighted pressure now points at app 1.
        store, _ = make_store(capacity=100.0, shares={0: 3.0, 1: 1.0})
        for p in range(6):
            store.put(block(0, 1, p))
        for p in range(3):
            store.put(block(1, 1, p))
        result = store.put(block(0, 2, 0, size=20.0))
        assert result.stored
        assert all(owner_of(b.id.rdd_id) == 1 for b in result.evicted)

    def test_tie_breaks_to_lower_app_index(self):
        pick = StaticShares().pick(
            [
                VictimCandidate(0, bid(0, 1), 10.0, 40.0, 1.0, 0.0),
                VictimCandidate(1, bid(1, 1), 10.0, 40.0, 1.0, 0.0),
            ],
            capacity_mb=100.0,
        )
        assert pick.app_index == 0


class TestMaxMinFair:
    def test_evicts_overage_above_fair_allocation(self):
        # capacity 100, demands 80 vs 20: fair split is 50/50 capped at
        # demand -> app 1 keeps its 20, app 0 is 30 over its 50.
        pick = MaxMinFair().pick(
            [
                VictimCandidate(0, bid(0, 1), 10.0, 80.0, 1.0, 0.0),
                VictimCandidate(1, bid(1, 1), 10.0, 20.0, 1.0, 0.0),
            ],
            capacity_mb=100.0,
        )
        assert pick.app_index == 0

    def test_weighted_water_filling(self):
        # Shares 3:1 over capacity 80 -> fair 60/20; app 1 at 30 is the
        # only tenant over its allocation despite the smaller footprint.
        pick = MaxMinFair().pick(
            [
                VictimCandidate(0, bid(0, 1), 10.0, 50.0, 3.0, 0.0),
                VictimCandidate(1, bid(1, 1), 10.0, 30.0, 1.0, 0.0),
            ],
            capacity_mb=80.0,
        )
        assert pick.app_index == 1

    def test_under_capacity_falls_back_to_weighted_usage(self):
        pick = MaxMinFair().pick(
            [
                VictimCandidate(0, bid(0, 1), 10.0, 30.0, 1.0, 0.0),
                VictimCandidate(1, bid(1, 1), 10.0, 20.0, 1.0, 0.0),
            ],
            capacity_mb=100.0,
        )
        assert pick.app_index == 0


class TestGlobalDistance:
    def test_evicts_greatest_reference_distance(self):
        # App 0's next candidate is needed sooner (distance 1) than app
        # 1's (distance 7): the global rule evicts app 1's block.
        store, _ = make_store(
            arbitration="global-mrd",
            capacity=100.0,
            distances={0: {1: 1.0}, 1: {STRIDE + 1: 7.0}},
        )
        for p in range(5):
            store.put(block(0, 1, p))
        for p in range(5):
            store.put(block(1, 1, p))
        result = store.put(block(0, 2, 0, size=10.0))
        assert result.stored
        assert [owner_of(b.id.rdd_id) for b in result.evicted] == [1]

    def test_untracked_tenant_is_preferred_victim(self):
        # App 1 tracks no distances (an LRU tenant): its blocks count as
        # INFINITE and go first, like untracked RDDs under MRD.
        store, _ = make_store(
            arbitration="global-mrd",
            capacity=100.0,
            distances={0: {1: 3.0}},
        )
        for p in range(5):
            store.put(block(0, 1, p))
        for p in range(5):
            store.put(block(1, 1, p))
        result = store.put(block(0, 2, 0, size=10.0))
        assert [owner_of(b.id.rdd_id) for b in result.evicted] == [1]


class TestSingleTenantTransparency:
    def test_delegates_victim_selection_verbatim(self):
        shared, composite = make_store(tenants=(0,), capacity=50.0)
        plain = MemoryStore(capacity_mb=50.0, policy=LruPolicy())
        for store in (shared, plain):
            for p in range(5):
                store.put(block(0, 1, p))
        shared_result = shared.put(block(0, 2, 0, size=20.0))
        plain_result = plain.put(block(0, 2, 0, size=20.0))
        assert [b.id for b in shared_result.evicted] == \
            [b.id for b in plain_result.evicted]

    def test_eviction_order_matches_tenant_policy(self):
        store, policy = make_store(tenants=(0,))
        for p in range(4):
            store.put(block(0, 1, p))
        assert list(policy.eviction_order(store)) == \
            list(policy.tenant_policy(0).eviction_order(store))


class TestArbitratedStream:
    def test_protected_and_pinned_blocks_skipped(self):
        store, policy = make_store(capacity=100.0)
        for p in range(3):
            store.put(block(0, 1, p))
            store.put(block(1, 1, p))
        store.pin(bid(0, 1, 0))
        protect = frozenset({bid(1, 1, 0)})
        victims = policy.select_victims(store, needed_mb=40.0, protect=protect)
        assert victims is not None
        assert len(victims) == 4
        assert bid(0, 1, 0) not in victims
        assert bid(1, 1, 0) not in victims

    def test_exhausted_stream_returns_none(self):
        store, policy = make_store(capacity=100.0)
        store.put(block(0, 1, 0))
        assert policy.select_victims(store, needed_mb=500.0) is None


def test_build_arbitration_rejects_unknown():
    with pytest.raises(ValueError, match="unknown arbitration"):
        build_arbitration("fifo")
