"""One application through the tenancy layer == the standalone engine.

The multi-tenant engine's single-app guardrail: for every registered
workload under every registered policy, running one application through
:class:`MultiTenantSimulator` must produce byte-identical
:class:`RunMetrics` to the standalone ``simulate()`` — and since the
standalone engine's two scheduler cores are themselves equivalence-
tested, this pins the tenancy loop to both.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.control.plane import RpcConfig
from repro.experiments.harness import build_workload_dag, cache_mb_for
from repro.simulator.engine import simulate
from repro.sweep.schemes import SCHEME_SPECS
from repro.tenancy import AppSpec, MultiTenantSimulator
from repro.workloads.registry import workload_names
from tests.simulator.test_scheduler_equivalence import fingerprint

CLUSTER = ClusterConfig(num_nodes=4, slots_per_node=2, cache_mb_per_node=50.0)
PARTITIONS = 8


def run_single_app_mt(workload: str, scheme: str, cfg, **kwargs) -> tuple:
    mt = MultiTenantSimulator(
        [AppSpec(workload=workload, scheme=scheme, partitions=PARTITIONS)],
        cfg,
        **kwargs,
    ).run()
    assert len(mt.apps) == 1
    assert mt.apps[0].app_id == 0
    assert mt.apps[0].arrival_time == 0.0
    assert mt.makespan == mt.apps[0].jct
    return fingerprint(mt.apps[0])


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("scheme", sorted(SCHEME_SPECS))
def test_single_app_matches_standalone_everywhere(workload, scheme):
    """Full cross product: every workload x every named scheme, under
    cache pressure (40% of the peak live set) so evictions, prefetches
    and purges actually fire inside the tenancy loop."""
    dag = build_workload_dag(workload, partitions=PARTITIONS)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    standalone = fingerprint(
        simulate(dag, cfg, SCHEME_SPECS[scheme].build())
    )
    assert run_single_app_mt(workload, scheme, cfg) == standalone


@pytest.mark.parametrize("arbitration", ["static", "maxmin", "global-mrd"])
def test_single_app_identical_under_every_arbitration(arbitration):
    """With one tenant the arbitration policy must be unobservable —
    the composite node policy delegates verbatim."""
    dag = build_workload_dag("KM", partitions=PARTITIONS)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    standalone = fingerprint(simulate(dag, cfg, SCHEME_SPECS["MRD"].build()))
    assert run_single_app_mt("KM", "MRD", cfg, arbitration=arbitration) == standalone


@pytest.mark.parametrize("scheme", ["LRU", "MRD", "MRD-prefetch"])
def test_single_app_matches_standalone_under_rpc(scheme):
    """Control-plane delays must interleave with the tenancy loop
    exactly as with the standalone event core."""
    dag = build_workload_dag("PR", partitions=PARTITIONS)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    rpc = dict(control_plane="rpc", control_config=RpcConfig(latency_s=2.0))
    standalone = fingerprint(
        simulate(dag, cfg, SCHEME_SPECS[scheme].build(), **rpc)
    )
    assert run_single_app_mt("PR", scheme, cfg, **rpc) == standalone
