"""Arrival processes: determinism, monotonicity, validation."""

from __future__ import annotations

import pytest

from repro.tenancy.arrivals import (
    ARRIVAL_KINDS,
    EmpiricalArrivals,
    FixedArrivals,
    PoissonArrivals,
    TraceArrivals,
    build_arrivals,
)

ALL_PROCESSES = [
    FixedArrivals(interval=5.0, start=2.0),
    PoissonArrivals(rate=0.2, seed=11),
    TraceArrivals([1.0, 3.0, 0.5]),
    EmpiricalArrivals([1.0, 3.0, 0.5], seed=4),
]


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
class TestContract:
    def test_same_call_twice_is_identical(self, process):
        assert process.times(20) == process.times(20)

    def test_prefix_stable(self, process):
        # Drawing more arrivals never changes the earlier ones.
        assert process.times(20)[:7] == process.times(7)

    def test_non_decreasing_and_non_negative(self, process):
        times = process.times(50)
        assert all(t >= 0 for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_zero_and_negative_n(self, process):
        assert process.times(0) == []
        with pytest.raises(ValueError):
            process.times(-1)


class TestFixed:
    def test_default_is_all_at_once(self):
        assert FixedArrivals().times(3) == [0.0, 0.0, 0.0]

    def test_spacing(self):
        assert FixedArrivals(interval=2.0, start=1.0).times(3) == [1.0, 3.0, 5.0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedArrivals(interval=-1.0)
        with pytest.raises(ValueError):
            FixedArrivals(start=-1.0)


class TestPoisson:
    def test_seed_changes_times(self):
        a = PoissonArrivals(rate=0.5, seed=0).times(10)
        b = PoissonArrivals(rate=0.5, seed=1).times(10)
        assert a != b

    def test_rate_scales_mean_gap(self):
        slow = PoissonArrivals(rate=0.1, seed=0).times(200)
        fast = PoissonArrivals(rate=1.0, seed=0).times(200)
        assert slow[-1] == pytest.approx(fast[-1] * 10)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)


class TestTrace:
    def test_cycles_when_short(self):
        times = TraceArrivals([1.0, 2.0]).times(5)
        assert times == [1.0, 3.0, 4.0, 6.0, 7.0]

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([1.0, -0.5])


class TestEmpirical:
    def test_gaps_drawn_from_trace(self):
        gaps = [1.0, 3.0]
        times = EmpiricalArrivals(gaps, seed=2).times(30)
        drawn = [b - a for a, b in zip([0.0] + times, times)]
        assert set(round(g, 9) for g in drawn) <= {1.0, 3.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalArrivals([])


class TestBuilder:
    def test_builds_every_kind(self):
        assert build_arrivals("fixed", interval=1.0).name == "fixed"
        assert build_arrivals("poisson", rate=0.5).name == "poisson"
        assert build_arrivals("trace", interarrivals=[1.0]).name == "trace"
        assert build_arrivals("empirical", interarrivals=[1.0]).name == "empirical"
        assert set(ARRIVAL_KINDS) == {"fixed", "poisson", "trace", "empirical"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            build_arrivals("weibull")
