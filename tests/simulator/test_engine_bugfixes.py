"""Regression tests for simulator accounting bugfixes.

Pins three fixes:

* lineage recovery (``_recompute_block``) re-persists through
  :meth:`BlockManager.insert_cached` instead of writing straight into
  the memory store, so recovery insertions are counted and can trigger
  properly-accounted evictions;
* task reads stride a cached RDD's partitions the same way writes do,
  so a stage whose task count differs from an input RDD's partition
  count still touches (and accounts) every partition exactly once;
* ``BlockManagerStats.hit_ratio`` reports ``None`` for a node that
  served no cached reads, and the idle node is excluded from the
  cluster's ``mean_node_hit_ratio`` instead of being counted as 0%.
"""

from __future__ import annotations

import pytest

from repro.cluster.block import Block, BlockId, block_of
from repro.cluster.block_manager import BlockManagerStats
from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.cluster.network import DiskModel, NetworkModel
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import LruScheme
from repro.simulator.engine import SparkSimulator, simulate
from repro.simulator.failures import FailurePlan
from repro.simulator.metrics import RunMetrics
from repro.simulator.reporting import metrics_to_dict


def config(cache_mb=1000.0, nodes=2, slots=2):
    return ClusterConfig(
        num_nodes=nodes,
        slots_per_node=slots,
        cache_mb_per_node=cache_mb,
        network=NetworkModel(bandwidth_mbps=800.0, latency_s=0.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
    )


# ----------------------------------------------------------------------
# _recompute_block routes through the block manager
# ----------------------------------------------------------------------
class TestRecomputeAccounting:
    def _prepared_simulator(self, cache_mb: float):
        ctx = SparkContext("recovery")
        data = ctx.text_file("in", size_mb=80.0, num_partitions=8).map(name="A").cache()
        data.count()
        data.count()
        dag = build_dag(SparkApplication(ctx))
        cfg = config(cache_mb=cache_mb)
        sim = SparkSimulator(dag, cfg, LruScheme(), failure_plan=FailurePlan())
        sim.scheme.prepare(dag)
        sim.cluster = build_cluster(cfg, sim.scheme.policy_factory)
        rdd = next(r for r in dag.app.rdds if r.name == "A")
        return sim, rdd

    def test_recovered_block_insertion_is_counted(self):
        sim, rdd = self._prepared_simulator(cache_mb=1000.0)
        bid = BlockId(rdd.id, 0)
        mgr = sim.cluster.master.manager_for(bid)
        t = sim._recompute_block(mgr, bid, rdd.partition_size_mb, 5.0, set())
        assert t > 5.0  # recomputation costs simulated time
        assert bid in mgr.node.memory
        assert mgr.stats.insertions == 1

    def test_recovery_into_full_cache_evicts_with_accounting(self):
        sim, rdd = self._prepared_simulator(cache_mb=30.0)
        bid = BlockId(rdd.id, 0)
        mgr = sim.cluster.master.manager_for(bid)
        # Fill this node's store with unrelated resident blocks.
        filler_id = max(r.id for r in sim.dag.app.rdds) + 1
        p = 0
        while mgr.node.memory.free_mb >= 10.0:
            mgr.insert_cached(Block(BlockId(filler_id, p), 10.0, "filler"), frozenset())
            p += 1
        before = mgr.stats.insertions
        sim._recompute_block(mgr, bid, rdd.partition_size_mb, 0.0, set())
        assert bid in mgr.node.memory
        assert mgr.stats.insertions == before + 1
        # The displaced filler blocks show up in the eviction counters
        # because recovery goes through insert_cached, not a raw put.
        assert mgr.stats.evictions > 0
        assert mgr.stats.evicted_mb > 0.0

    def test_memory_accounting_stays_balanced_after_recovery(self):
        sim, rdd = self._prepared_simulator(cache_mb=30.0)
        bid = BlockId(rdd.id, 3)
        mgr = sim.cluster.master.manager_for(bid)
        sim._recompute_block(mgr, bid, rdd.partition_size_mb, 0.0, set())
        store = mgr.node.memory
        assert store.used_mb <= store.capacity_mb + 1e-9
        assert abs(store.used_mb - sum(b.size_mb for b in store.blocks())) < 1e-9


# ----------------------------------------------------------------------
# read striding matches write striding
# ----------------------------------------------------------------------
class TestReadStriding:
    def _mismatched_app(self):
        """A stage whose task count (12) differs from both cached
        inputs' partition counts (8 and 4): union of two cached RDDs."""
        ctx = SparkContext("stride")
        a = ctx.text_file("in", size_mb=80.0, num_partitions=8).map(name="A").cache()
        a.count()
        b = a.reduce_by_key(num_partitions=4, name="B").cache()
        b.count()
        b.union(a, name="U").count()
        return build_dag(SparkApplication(ctx))

    def test_mismatched_stage_reads_every_partition_once(self):
        dag = self._mismatched_app()
        union_stage = next(s for s in dag.active_stages if len(s.cache_reads) == 2)
        parts = {r.num_partitions for r in union_stage.cache_reads}
        assert union_stage.num_tasks == 12 and parts == {8, 4}

        # Before the fix task p read block p of every input, which both
        # skipped tail partitions and dereferenced partitions past the
        # smaller RDD's end (a SimulationError).  Striding reads makes
        # the stage touch each partition of each input exactly once.
        metrics = simulate(dag, config(), LruScheme())
        expected = sum(
            r.num_partitions for s in dag.active_stages for r in s.cache_reads
        )
        assert metrics.stats.accesses == expected == 20
        assert metrics.stats.misses == 0  # ample cache: all 20 are hits

    def test_blocks_created_match_blocks_read_under_pressure(self):
        """With a tight cache the tail partitions spill and re-load;
        the run must still balance instead of erroring out."""
        dag = self._mismatched_app()
        metrics = simulate(dag, config(cache_mb=20.0), LruScheme())
        assert metrics.stats.accesses == 20
        assert metrics.stats.hits + metrics.stats.misses == 20


# ----------------------------------------------------------------------
# idle-node hit ratio
# ----------------------------------------------------------------------
class TestIdleNodeHitRatio:
    def test_stats_hit_ratio_none_without_accesses(self):
        stats = BlockManagerStats()
        assert stats.hit_ratio is None

    def test_stats_hit_ratio_value_with_accesses(self):
        stats = BlockManagerStats(hits=3, misses=1)
        assert stats.hit_ratio == pytest.approx(0.75)

    def test_mean_node_hit_ratio_excludes_idle_nodes(self):
        m = RunMetrics(scheme="LRU", workload="w",
                       per_node_hit_ratio=[0.5, None, 1.0])
        assert m.mean_node_hit_ratio == pytest.approx(0.75)

    def test_mean_node_hit_ratio_none_when_all_idle(self):
        m = RunMetrics(scheme="LRU", workload="w",
                       per_node_hit_ratio=[None, None])
        assert m.mean_node_hit_ratio is None
        assert m.hit_ratio == 0.0  # cluster aggregate still a plain float

    def test_run_reports_idle_nodes_as_none(self):
        """A 3-node cluster running a 2-partition app leaves at least
        one node without cached reads — it must report None, and the
        mean must ignore it."""
        ctx = SparkContext("idle")
        data = ctx.text_file("in", size_mb=20.0, num_partitions=2).map(name="A").cache()
        data.count()
        data.count()
        dag = build_dag(SparkApplication(ctx))
        metrics = simulate(dag, config(nodes=3), LruScheme())
        assert len(metrics.per_node_hit_ratio) == 3
        assert None in metrics.per_node_hit_ratio
        active = [r for r in metrics.per_node_hit_ratio if r is not None]
        assert active and metrics.mean_node_hit_ratio == pytest.approx(
            sum(active) / len(active)
        )

    def test_reporting_dict_carries_nullable_ratios(self):
        m = RunMetrics(scheme="LRU", workload="w",
                       per_node_hit_ratio=[0.5, None])
        data = metrics_to_dict(m)
        assert data["per_node_hit_ratio"] == [0.5, None]
        assert data["mean_node_hit_ratio"] == pytest.approx(0.5)
