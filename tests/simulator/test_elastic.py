"""Elastic membership in the standalone engine.

Covers the join/decommission lifecycle end to end: scheduler-core
equivalence under churn, the static-membership guardrail (no churn +
stride placement must be byte-identical to the pre-elastic engine),
autoscaler determinism, drop-vs-migrate accounting, presence-weighted
hit ratios, the §4.4 exactly-once table resend under lossy control, and
trace record/replay of the membership events.
"""

from __future__ import annotations

import pytest

from repro.control.plane import RpcConfig
from repro.experiments.harness import build_workload_dag, cache_mb_for
from repro.simulator.engine import simulate
from repro.simulator.failures import Autoscaler, FailurePlan, build_churn_plan
from repro.simulator.metrics import RunMetrics
from repro.simulator.reporting import metrics_from_dict, metrics_to_dict
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import build_scheme
from tests.simulator.test_scheduler_equivalence import CLUSTER, fingerprint, run_both


def _dag(workload: str = "KM"):
    return build_workload_dag(workload, partitions=8)


def _cfg(dag, fraction: float = 0.4):
    return CLUSTER.with_cache(cache_mb_for(dag, fraction, CLUSTER))


def _churny_plan() -> FailurePlan:
    """A join, a pinned decommission, and an unpinned decommission."""
    return (
        FailurePlan()
        .add_join(at_seq=2)
        .add_decommission(at_seq=4, node_id=1)
        .add_decommission(at_seq=6)
    )


# ----------------------------------------------------------------------
# scheduler-core equivalence under churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme_name", ["lru", "mrd"])
@pytest.mark.parametrize("placement", ["stride", "rendezvous"])
@pytest.mark.parametrize("rebalance", ["drop", "migrate"])
def test_cores_equivalent_under_churn(scheme_name, placement, rebalance):
    dag = _dag()
    event, reference = run_both(
        dag, _cfg(dag), scheme_name,
        failure_plan=_churny_plan(), placement=placement, rebalance=rebalance,
    )
    assert event == reference


@pytest.mark.parametrize("scheme_name", ["lru", "mrd"])
def test_cores_equivalent_under_churn_over_rpc(scheme_name):
    """Membership messages ride the same delayed control plane as
    everything else; the cores must interleave them identically."""
    dag = _dag("PR")
    event, reference = run_both(
        dag, _cfg(dag), scheme_name,
        failure_plan=_churny_plan(), placement="rendezvous",
        rebalance="migrate",
        control_plane="rpc", control_config=RpcConfig(latency_s=1.0),
    )
    assert event == reference


# ----------------------------------------------------------------------
# the static-membership guardrail
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme_name", ["lru", "mrd"])
def test_static_membership_is_byte_identical(scheme_name):
    """No churn events + stride placement must reproduce the pre-elastic
    engine exactly, whatever the rebalance policy or an empty plan says
    — the elasticity machinery may not perturb static runs."""
    dag = _dag()
    cfg = _cfg(dag)
    baseline = fingerprint(simulate(dag, cfg, build_scheme(scheme_name)))
    elastic_but_inert = fingerprint(simulate(
        dag, cfg, build_scheme(scheme_name),
        failure_plan=FailurePlan(), rebalance="migrate",
    ))
    assert elastic_but_inert == baseline


def test_static_run_reports_no_churn():
    dag = _dag()
    m = simulate(dag, _cfg(dag), build_scheme("mrd"))
    assert m.nodes_joined == 0
    assert m.nodes_decommissioned == 0
    assert m.rebalanced_blocks == 0
    assert m.rebalanced_mb == 0.0
    assert m.decommission_dropped_blocks == 0
    assert m.per_node_presence == []


# ----------------------------------------------------------------------
# membership lifecycle and accounting
# ----------------------------------------------------------------------
def test_join_and_decommission_counters():
    dag = _dag()
    m = simulate(
        dag, _cfg(dag), build_scheme("mrd"),
        failure_plan=_churny_plan(), placement="rendezvous",
    )
    assert m.nodes_joined == 1
    assert m.nodes_decommissioned == 2
    assert m.jct > 0
    assert len(m.stage_records) == len(dag.active_stages)


def test_drop_loses_blocks_migrate_carries_them():
    dag = _dag()
    cfg = _cfg(dag)
    plan = FailurePlan().add_decommission(at_seq=4, node_id=0)
    dropped = simulate(dag, cfg, build_scheme("mrd"),
                       failure_plan=plan, rebalance="drop")
    migrated = simulate(dag, cfg, build_scheme("mrd"),
                        failure_plan=plan, rebalance="migrate")
    # The node held cached blocks by seq 4; drop loses them all,
    # migrate carries the finite-distance ones.
    assert dropped.decommission_dropped_blocks > 0
    assert dropped.rebalanced_blocks == 0
    assert migrated.rebalanced_blocks > 0
    assert migrated.rebalanced_mb > 0
    # Every resident block is either migrated or dropped, never both.
    total = dropped.decommission_dropped_blocks + dropped.rebalanced_blocks
    assert (migrated.rebalanced_blocks
            + migrated.decommission_dropped_blocks) == total


def test_failure_of_decommissioned_node_is_skipped():
    """An autoscaler can decommission a node before its scheduled
    failure comes due; the failure must be a no-op, not a crash."""
    dag = _dag()
    plan = (FailurePlan()
            .add_decommission(at_seq=2, node_id=3)
            .add(at_seq=5, node_id=3))
    m = simulate(dag, _cfg(dag), build_scheme("mrd"), failure_plan=plan)
    assert m.nodes_decommissioned == 1
    assert m.failure_lost_blocks == 0


def test_unknown_placement_rejected():
    dag = _dag()
    with pytest.raises(ValueError, match="placement must be one of"):
        simulate(dag, _cfg(dag), build_scheme("lru"), placement="bogus")


# ----------------------------------------------------------------------
# autoscaler: reactive but deterministic
# ----------------------------------------------------------------------
def _autoscaled_plan() -> FailurePlan:
    # Thresholds far below real pressure (8 tasks / 8+ slots = ~1.0), so
    # scale-ups fire deterministically; jitter exercises the seeded RNG.
    return FailurePlan(autoscaler=Autoscaler(
        min_nodes=2, max_nodes=6, scale_up_at=0.05, scale_down_at=0.01,
        cooldown=1, jitter=0.2, seed=7,
    ))


def test_autoscaler_grows_the_cluster():
    dag = _dag()
    m = simulate(dag, _cfg(dag), build_scheme("mrd"),
                 failure_plan=_autoscaled_plan(), placement="rendezvous")
    assert m.nodes_joined > 0


def test_autoscaler_replays_identically():
    """One plan object, three runs: reset() must rearm the RNG so every
    run draws the same decisions (and both cores agree)."""
    dag = _dag()
    cfg = _cfg(dag)
    plan = _autoscaled_plan()
    first = run_both(dag, cfg, "mrd", failure_plan=plan,
                     placement="rendezvous")
    again = fingerprint(simulate(dag, cfg, build_scheme("mrd"),
                                 failure_plan=plan, placement="rendezvous"))
    assert first[0] == first[1] == again


# ----------------------------------------------------------------------
# churn plans
# ----------------------------------------------------------------------
def test_build_churn_plan_is_deterministic():
    a = build_churn_plan(20, 0.5, seed=3)
    b = build_churn_plan(20, 0.5, seed=3)
    assert a.memberships == b.memberships
    assert build_churn_plan(20, 0.5, seed=4).memberships != a.memberships


def test_build_churn_plan_rate_bounds():
    assert build_churn_plan(20, 0.0).memberships == []
    full = build_churn_plan(20, 1.0)
    assert sorted(m.at_seq for m in full.memberships) == list(range(1, 20))
    with pytest.raises(ValueError):
        build_churn_plan(20, 1.5)
    with pytest.raises(ValueError):
        build_churn_plan(-1, 0.5)


# ----------------------------------------------------------------------
# presence-weighted hit ratios (regression: a last-stage joiner must not
# drag the cluster mean like a full-run node)
# ----------------------------------------------------------------------
def test_mean_node_hit_ratio_weights_by_presence():
    m = RunMetrics(scheme="s", workload="w",
                   per_node_hit_ratio=[1.0, 0.0],
                   per_node_presence=[1.0, 0.1])
    assert m.mean_node_hit_ratio == pytest.approx(1.0 / 1.1)


def test_mean_node_hit_ratio_static_is_plain_average():
    m = RunMetrics(scheme="s", workload="w",
                   per_node_hit_ratio=[1.0, 0.0])
    assert m.mean_node_hit_ratio == pytest.approx(0.5)


def test_mean_node_hit_ratio_skips_idle_nodes():
    m = RunMetrics(scheme="s", workload="w",
                   per_node_hit_ratio=[None, 0.8],
                   per_node_presence=[0.2, 0.5])
    assert m.mean_node_hit_ratio == pytest.approx(0.8)


def test_mean_node_hit_ratio_none_when_no_weight():
    all_idle = RunMetrics(scheme="s", workload="w",
                          per_node_hit_ratio=[None, None])
    assert all_idle.mean_node_hit_ratio is None
    zero_presence = RunMetrics(scheme="s", workload="w",
                               per_node_hit_ratio=[0.9],
                               per_node_presence=[0.0])
    assert zero_presence.mean_node_hit_ratio is None


def test_churn_run_reports_presence_fractions():
    dag = _dag()
    m = simulate(
        dag, _cfg(dag), build_scheme("mrd"),
        failure_plan=FailurePlan().add_join(at_seq=5),
        placement="rendezvous",
    )
    assert len(m.per_node_presence) == len(m.per_node_hit_ratio)
    # The original nodes were live the whole run; the joiner was not.
    assert m.per_node_presence[:4] == [1.0] * 4
    assert 0.0 < m.per_node_presence[4] < 1.0


def test_elastic_metrics_round_trip_through_reporting():
    dag = _dag()
    m = simulate(
        dag, _cfg(dag), build_scheme("mrd"),
        failure_plan=_churny_plan(), placement="rendezvous",
        rebalance="migrate",
    )
    back = metrics_from_dict(metrics_to_dict(m))
    assert back.nodes_joined == m.nodes_joined
    assert back.nodes_decommissioned == m.nodes_decommissioned
    assert back.rebalanced_blocks == m.rebalanced_blocks
    assert back.rebalanced_mb == m.rebalanced_mb
    assert back.decommission_dropped_blocks == m.decommission_dropped_blocks
    assert back.per_node_presence == m.per_node_presence
    assert back.mean_node_hit_ratio == m.mean_node_hit_ratio


# ----------------------------------------------------------------------
# §4.4 under lossy control: the table is resent exactly once per
# *successful* (re-)registration — a lost register means no resend
# ----------------------------------------------------------------------
def _snapshot_count(failure_plan: FailurePlan | None) -> int:
    dag = _dag()
    scheme = build_scheme("mrd")
    calls: list[int] = []
    original = scheme.table_snapshot

    def spy():
        calls.append(1)
        return original()

    scheme.table_snapshot = spy  # type: ignore[method-assign]
    simulate(
        dag, _cfg(dag), scheme,
        control_plane="rpc", control_config=RpcConfig(latency_s=0.0),
        failure_plan=failure_plan,
    )
    return len(calls)


def test_table_resent_exactly_once_per_reregistration():
    startup_only = _snapshot_count(None)
    assert startup_only == CLUSTER.num_nodes  # one per initial register
    one_failure = _snapshot_count(FailurePlan().add(at_seq=3, node_id=1))
    assert one_failure == startup_only + 1
    two_failures = _snapshot_count(
        FailurePlan().add(at_seq=3, node_id=1).add(at_seq=6, node_id=2)
    )
    assert two_failures == startup_only + 2


def test_lost_register_means_no_resend():
    """A total control outage over the failure boundary swallows the
    replacement's WorkerRegister: no delivery, no table resend."""
    plan = (FailurePlan()
            .add(at_seq=3, node_id=1)
            .add_outage(from_seq=3, to_seq=3, node_id=1, loss_rate=1.0))
    assert _snapshot_count(plan) == CLUSTER.num_nodes


def test_join_registers_through_the_table_resend_path():
    plan = FailurePlan().add_join(at_seq=2)
    assert _snapshot_count(plan) == CLUSTER.num_nodes + 1


# ----------------------------------------------------------------------
# tracing: membership events record, replay and survive JSONL
# ----------------------------------------------------------------------
def _record_churn_run() -> tuple[TraceRecorder, RunMetrics]:
    dag = _dag()
    recorder = TraceRecorder(meta={"scheme": "mrd"})
    metrics = simulate(
        dag, _cfg(dag), build_scheme("mrd"),
        failure_plan=FailurePlan().add_join(at_seq=2)
        .add_decommission(at_seq=4, node_id=0),
        placement="rendezvous", rebalance="migrate",
        recorder=recorder,
    )
    return recorder, metrics


def test_churn_trace_records_membership_events():
    recorder, metrics = _record_churn_run()
    by_kind: dict[str, list] = {}
    for ev in recorder.events:
        by_kind.setdefault(ev.kind, []).append(ev)
    registers = by_kind.get("worker_register", [])
    deregisters = by_kind.get("worker_deregister", [])
    migrations = by_kind.get("block_migrate", [])
    # Startup registrations are untraced; the join is the only register.
    assert [e.reason for e in registers] == ["join"]
    assert [e.reason for e in deregisters] == ["decommission"]
    assert deregisters[0].node_id == 0
    # One migrate event per rebalanced block, naming the retiring node.
    assert len(migrations) == metrics.rebalanced_blocks > 0
    assert all(ev.from_node == 0 for ev in migrations)
    assert all(ev.to_node != 0 for ev in migrations)


def test_churn_trace_replays_identically_and_round_trips(tmp_path):
    rec1, _ = _record_churn_run()
    rec2, _ = _record_churn_run()
    assert rec1.events == rec2.events
    path = tmp_path / "churn.jsonl"
    rec1.to_jsonl(path)
    assert TraceRecorder.from_jsonl(path).events == rec1.events
