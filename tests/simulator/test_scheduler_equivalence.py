"""Scheduler-core equivalence: event queue vs reference loops.

The event-queue core (global slot heap + prefetch-completion heap) is a
pure performance rewrite of the reference core (per-task ``min()`` over
all nodes + per-task scan of every in-flight dict).  These tests pin
the contract down: identical :class:`RunMetrics` — times, counters,
per-node ratios, stage records — on every registered workload under
every registered policy, plus the edge paths (failure injection,
unpersist-in-flight, trace recording) the happy path doesn't exercise.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConfig
from repro.cluster.memory_store import store_mode
from repro.control.plane import RpcConfig
from repro.dag.dag_builder import build_dag
from repro.experiments.harness import build_workload_dag, cache_mb_for
from repro.simulator.engine import SCHEDULERS, SparkSimulator, simulate
from repro.simulator.failures import FailurePlan
from repro.simulator.metrics import RunMetrics
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import SCHEME_BUILDERS, build_scheme
from repro.workloads.registry import workload_names
from repro.workloads.synthetic import SyntheticConfig, generate_application

CLUSTER = ClusterConfig(num_nodes=4, slots_per_node=2, cache_mb_per_node=50.0)


def fingerprint(m: RunMetrics) -> tuple:
    """Every observable RunMetrics field, as one comparable value."""
    return (
        m.jct,
        m.stats.accesses, m.stats.hits, m.stats.misses,
        m.stats.insertions, m.stats.failed_insertions,
        m.stats.evictions, m.stats.purged,
        m.stats.prefetches_issued, m.stats.prefetches_used,
        m.stats.prefetched_mb, m.stats.evicted_mb,
        tuple(m.per_node_hit_ratio),
        m.failure_lost_blocks,
        tuple((r.seq, r.start, r.end, r.num_tasks) for r in m.stage_records),
        m.control.delivered, m.control.dropped, m.control.stale_orders,
        m.control.orders_applied,
    )


def run_both(dag, cfg, scheme_name: str, **kwargs) -> tuple[tuple, tuple]:
    results = [
        fingerprint(simulate(dag, cfg, build_scheme(scheme_name),
                             scheduler=s, **kwargs))
        for s in SCHEDULERS
    ]
    return results[0], results[1]


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("scheme_name", sorted(SCHEME_BUILDERS))
def test_equivalent_on_every_workload_and_policy(workload, scheme_name):
    """Full cross product: 20 workloads x 10 policies, under cache
    pressure (40% of the peak live set) so evictions and prefetches
    actually fire."""
    dag = build_workload_dag(workload, partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    event, reference = run_both(dag, cfg, scheme_name)
    assert event == reference


@pytest.mark.parametrize("scheme_name", ["lru", "mrd"])
def test_equivalent_under_failure_injection(scheme_name):
    """Node failures cancel in-flight prefetches and reroute blocks —
    the lazy-invalidation path of the event core's prefetch heap."""
    dag = build_workload_dag("PO", partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    plan = FailurePlan().add(at_seq=3, node_id=1).add(at_seq=6, node_id=2, lose_disk=True)
    event, reference = run_both(dag, cfg, scheme_name, failure_plan=plan)
    assert event == reference


def test_equivalent_traces_recorded():
    """Both cores emit the same structured trace, event for event."""
    dag = build_workload_dag("KM", partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    traces = []
    for scheduler in SCHEDULERS:
        recorder = TraceRecorder()
        simulate(dag, cfg, build_scheme("mrd"), scheduler=scheduler,
                 recorder=recorder)
        traces.append([ev.to_dict() for ev in recorder.events])
    assert traces[0] == traces[1]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 40),
    num_jobs=st.integers(2, 8),
    cache=st.floats(4.0, 120.0),
    scheme_name=st.sampled_from(sorted(SCHEME_BUILDERS)),
)
def test_equivalent_on_random_applications(seed, num_jobs, cache, scheme_name):
    """Property form: random synthetic DAGs, any policy, any pressure."""
    dag = build_dag(generate_application(
        seed, SyntheticConfig(num_jobs=num_jobs, partitions=8)
    ))
    cfg = CLUSTER.with_cache(cache)
    event, reference = run_both(dag, cfg, scheme_name)
    assert event == reference


@pytest.mark.parametrize("scheme_name", ["lru", "mrd", "mrd-prefetch"])
def test_equivalent_under_rpc_control_plane(scheme_name):
    """Nonzero control latency, jitter and loss: the delayed-delivery
    heap must interleave identically with both scheduler cores."""
    dag = build_workload_dag("PR", partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    rpc = RpcConfig(latency_s=2.0, jitter_s=0.5, loss_rate=0.05, seed=3)
    event, reference = run_both(dag, cfg, scheme_name,
                                control_plane="rpc", control_config=rpc)
    assert event == reference


@pytest.mark.parametrize("workload", ["KM", "PR", "CC"])
@pytest.mark.parametrize("scheme_name", sorted(SCHEME_BUILDERS))
def test_rpc_at_zero_matches_instant(workload, scheme_name):
    """An rpc plane with all knobs at zero is semantically invisible:
    same fingerprint as the default instant plane, on either core."""
    dag = build_workload_dag(workload, partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    instant = fingerprint(simulate(dag, cfg, build_scheme(scheme_name)))
    for scheduler in SCHEDULERS:
        rpc = fingerprint(simulate(
            dag, cfg, build_scheme(scheme_name), scheduler=scheduler,
            control_plane="rpc", control_config=RpcConfig(latency_s=0.0),
        ))
        assert rpc == instant


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_BUILDERS))
def test_columnar_store_matches_object_store(scheme_name):
    """The columnar block store is an acceleration index only: both
    store modes, on both scheduler cores, one fingerprint."""
    dag = build_workload_dag("KM", partitions=8)
    cfg = CLUSTER.with_cache(cache_mb_for(dag, 0.4, CLUSTER))
    fps = set()
    for scheduler in SCHEDULERS:
        for columnar in (True, False):
            with store_mode(columnar):
                fps.add(fingerprint(simulate(
                    dag, cfg, build_scheme(scheme_name), scheduler=scheduler
                )))
    assert len(fps) == 1


@pytest.mark.parametrize("scheme_name", ["lru", "mrd"])
def test_cache_bound_profile_equivalent_across_store_modes(scheme_name):
    """The benchmark's cache-bound profile (severely undersized cache):
    eviction, purge and prefetch churn all flow through the columnar
    fast paths, and the metrics must not move by a bit."""
    from repro.bench.engine_bench import BenchConfig, build_bench_dag

    bench = BenchConfig(min_tasks=600, num_nodes=8, repeats=1)
    dag = build_bench_dag(bench, "cache")
    cfg = bench.cluster().with_cache(40.0)
    fps = set()
    for scheduler in SCHEDULERS:
        for columnar in (True, False):
            with store_mode(columnar):
                fps.add(fingerprint(simulate(
                    dag, cfg, build_scheme(scheme_name), scheduler=scheduler
                )))
    assert len(fps) == 1


def test_tenancy_route_equivalent_across_store_modes():
    """Shared-cluster runs (ArbitratedNodePolicy + tenant store views)
    take the batch-unsupported fallbacks; both store modes must agree
    per app and on the makespan."""
    from repro.tenancy import AppSpec, FixedArrivals, MultiTenantSimulator

    specs = [
        AppSpec(workload="KM", scheme="MRD", partitions=8),
        AppSpec(workload="PR", scheme="LRU", partitions=8),
    ]
    results = set()
    for columnar in (True, False):
        with store_mode(columnar):
            mt = MultiTenantSimulator(
                specs, CLUSTER.with_cache(30.0),
                arrivals=FixedArrivals(interval=5.0),
            ).run()
        results.add(
            (mt.makespan, tuple(fingerprint(app) for app in mt.apps))
        )
    assert len(results) == 1


def test_unknown_scheduler_rejected():
    dag = build_workload_dag("KM", partitions=8)
    with pytest.raises(ValueError, match="scheduler"):
        SparkSimulator(dag, CLUSTER, build_scheme("lru"), scheduler="fifo")
