"""Direct unit tests for run metrics and stage records."""

import pytest

from repro.cluster.block_manager import BlockManagerStats
from repro.simulator.metrics import RunMetrics, StageRecord


class TestStageRecord:
    def test_duration(self):
        r = StageRecord(seq=0, stage_id=3, job_id=1, start=2.0, end=5.5, num_tasks=8)
        assert r.duration == pytest.approx(3.5)


class TestRunMetrics:
    def make(self, jct=10.0, hits=8, misses=2):
        return RunMetrics(
            scheme="X",
            workload="w",
            jct=jct,
            stats=BlockManagerStats(hits=hits, misses=misses),
        )

    def test_hit_ratio(self):
        assert self.make().hit_ratio == pytest.approx(0.8)

    def test_hit_ratio_no_accesses(self):
        assert self.make(hits=0, misses=0).hit_ratio == 0.0

    def test_normalized_jct(self):
        base = self.make(jct=20.0)
        assert self.make(jct=10.0).normalized_jct(base) == pytest.approx(0.5)

    def test_normalized_jct_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            self.make().normalized_jct(self.make(jct=0.0))

    def test_summary_contains_key_fields(self):
        text = self.make().summary()
        for token in ("X", "w", "JCT", "80.0%"):
            assert token in text

    def test_stage_count(self):
        m = self.make()
        assert m.num_stages_executed == 0
        m.stage_records.append(
            StageRecord(seq=0, stage_id=0, job_id=0, start=0, end=1, num_tasks=1)
        )
        assert m.num_stages_executed == 1


class TestStatsAggregation:
    def test_accesses_property(self):
        s = BlockManagerStats(hits=3, misses=7)
        assert s.accesses == 10
        assert s.hit_ratio == pytest.approx(0.3)
