"""Tests for failure injection and lineage recovery (paper §4.4)."""

import pytest

from repro.core.policy import MrdScheme
from repro.policies.scheme import LruScheme
from repro.simulator.engine import SparkSimulator, simulate
from repro.simulator.failures import FailurePlan, NodeFailure
from repro.dag.dag_builder import build_dag
from tests.conftest import make_iterative_app, make_linear_app
from tests.simulator.test_engine import small_config


class TestFailurePlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFailure(at_seq=-1, node_id=0)
        with pytest.raises(ValueError):
            NodeFailure(at_seq=0, node_id=-1)

    def test_add_chains(self):
        plan = FailurePlan().add(1, 0).add(2, 1, lose_disk=True)
        assert len(plan.failures) == 2
        assert plan.failures_at(2)[0].lose_disk

    def test_out_of_range_node_rejected_at_apply(self):
        dag = build_dag(make_linear_app())
        plan = FailurePlan().add(0, 99)
        with pytest.raises(ValueError, match="node 99"):
            simulate(dag, small_config(), LruScheme(), failure_plan=plan)


class TestCacheLoss:
    def test_run_completes_and_counts_losses(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        plan = FailurePlan().add(at_seq=2, node_id=0)
        metrics = simulate(dag, small_config(), LruScheme(), failure_plan=plan)
        assert metrics.failure_lost_blocks > 0
        assert metrics.num_stages_executed == dag.num_active_stages

    def test_failure_costs_time(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        healthy = simulate(dag, small_config(), LruScheme())
        failed = simulate(
            dag, small_config(), LruScheme(),
            failure_plan=FailurePlan().add(at_seq=2, node_id=0),
        )
        assert failed.jct > healthy.jct
        assert failed.hit_ratio < healthy.hit_ratio

    def test_disk_copies_survive_executor_restart(self):
        """Cache-only loss: reads fall back to spilled copies (no error)."""
        dag = build_dag(make_iterative_app(iterations=3))
        plan = FailurePlan().add(at_seq=1, node_id=1)
        metrics = simulate(dag, small_config(), MrdScheme(), failure_plan=plan)
        assert metrics.jct > 0

    def test_mrd_recovers_after_failure(self):
        """The manager re-issues the table: MRD still beats LRU."""
        dag = build_dag(make_iterative_app(iterations=5))
        cfg = small_config(cache_mb=25.0)
        plan = lambda: FailurePlan().add(at_seq=3, node_id=0)  # noqa: E731
        lru = simulate(dag, cfg, LruScheme(), failure_plan=plan())
        mrd = simulate(dag, cfg, MrdScheme(), failure_plan=plan())
        assert mrd.jct <= lru.jct * 1.05


class TestLineageRecovery:
    def test_lost_disk_triggers_recompute(self):
        """Machine loss drops spilled copies; lineage recovery rebuilds."""
        dag = build_dag(make_linear_app(num_jobs=4))
        plan = FailurePlan().add(at_seq=1, node_id=0, lose_disk=True)
        metrics = simulate(dag, small_config(cache_mb=10.0), LruScheme(), failure_plan=plan)
        # The run completes despite unrecoverable disk copies.
        assert metrics.num_stages_executed == dag.num_active_stages

    def test_recompute_costs_more_than_disk_read(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        cache_starved = small_config(cache_mb=10.0)
        disk_loss = simulate(
            dag, cache_starved, LruScheme(),
            failure_plan=FailurePlan().add(at_seq=1, node_id=0, lose_disk=True),
        )
        cache_loss = simulate(
            dag, cache_starved, LruScheme(),
            failure_plan=FailurePlan().add(at_seq=1, node_id=0),
        )
        assert disk_loss.jct >= cache_loss.jct

    def test_inflight_prefetches_cancelled(self):
        dag = build_dag(make_iterative_app(iterations=4))
        cfg = small_config(cache_mb=15.0)
        plan = FailurePlan().add(at_seq=5, node_id=0).add(at_seq=8, node_id=1)
        metrics = simulate(dag, cfg, MrdScheme(), failure_plan=plan)
        assert metrics.jct > 0  # no stuck in-flight state
