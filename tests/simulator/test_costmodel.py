"""Unit tests for the task cost model."""

import pytest

from repro.cluster.network import DiskModel, NetworkModel
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.simulator.costmodel import CostModel


@pytest.fixture
def cost():
    return CostModel(
        network=NetworkModel(bandwidth_mbps=800.0, latency_s=0.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
        cpu_speed=1.0,
        task_overhead_s=0.0,
    )


def shuffle_app_dag():
    ctx = SparkContext("t")
    ctx.text_file("in", size_mb=100.0, num_partitions=4).reduce_by_key(
        size_factor=1.0
    ).count()
    return build_dag(SparkApplication(ctx))


class TestCostModel:
    def test_input_read_time_per_task(self, cost):
        dag = shuffle_app_dag()
        map_stage = dag.active_stages[0]
        # 100 MB input over 4 tasks at 100 MB/s = 0.25 s each.
        assert cost.input_read_time(map_stage) == pytest.approx(0.25)
        assert cost.shuffle_read_time(map_stage) == 0.0

    def test_shuffle_read_time_per_task(self, cost):
        dag = shuffle_app_dag()
        result = dag.active_stages[1]
        # 100 MB shuffled over 4 tasks at 100 MB/s net = 0.25 s each.
        assert cost.shuffle_read_time(result) == pytest.approx(0.25)
        assert result.input_reads == ()

    def test_cpu_speed_scales_compute(self):
        dag = shuffle_app_dag()
        stage = dag.active_stages[0]
        slow = CostModel(network=NetworkModel(), disk=DiskModel(), cpu_speed=0.5)
        fast = CostModel(network=NetworkModel(), disk=DiskModel(), cpu_speed=2.0)
        assert slow.compute_time(stage) == pytest.approx(4 * fast.compute_time(stage))

    def test_fixed_task_time_sums_components(self, cost):
        dag = shuffle_app_dag()
        stage = dag.active_stages[0]
        expected = (
            cost.compute_time(stage)
            + cost.shuffle_read_time(stage)
            + cost.input_read_time(stage)
        )
        assert cost.fixed_task_time(stage) == pytest.approx(expected)

    def test_overhead_added(self):
        dag = shuffle_app_dag()
        stage = dag.active_stages[0]
        with_oh = CostModel(
            network=NetworkModel(), disk=DiskModel(), task_overhead_s=0.5
        )
        without = CostModel(
            network=NetworkModel(), disk=DiskModel(), task_overhead_s=0.0
        )
        assert with_oh.fixed_task_time(stage) == pytest.approx(
            without.fixed_task_time(stage) + 0.5
        )

    def test_invalid_cpu_speed(self):
        with pytest.raises(ValueError):
            CostModel(network=NetworkModel(), disk=DiskModel(), cpu_speed=0.0)

    def test_remote_transfer(self, cost):
        assert cost.remote_transfer_time(100.0) == pytest.approx(1.0)
