"""Tests for heterogeneous per-node CPU speeds."""

from dataclasses import replace

import pytest

from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.core.policy import MrdScheme
from repro.policies.lru import LruPolicy
from repro.policies.scheme import LruScheme
from repro.simulator.engine import simulate
from tests.conftest import make_iterative_app
from tests.simulator.test_engine import small_config


def compute_heavy_dag():
    ctx = SparkContext("cpu")
    ctx.text_file("in", size_mb=80.0, num_partitions=8).map(cpu_per_mb=0.2).count()
    return build_dag(SparkApplication(ctx))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(heterogeneity=1.0)
        with pytest.raises(ValueError):
            ClusterConfig(heterogeneity=-0.1)

    def test_homogeneous_by_default(self):
        cluster = build_cluster(ClusterConfig(num_nodes=4), lambda i: LruPolicy())
        assert all(node.cpu_factor == 1.0 for node in cluster.nodes)

    def test_factors_deterministic_per_seed(self):
        cfg = ClusterConfig(num_nodes=4, heterogeneity=0.3, heterogeneity_seed=7)
        a = build_cluster(cfg, lambda i: LruPolicy())
        b = build_cluster(cfg, lambda i: LruPolicy())
        assert [n.cpu_factor for n in a.nodes] == [n.cpu_factor for n in b.nodes]

    def test_factors_within_spread(self):
        cfg = ClusterConfig(num_nodes=16, heterogeneity=0.3)
        cluster = build_cluster(cfg, lambda i: LruPolicy())
        factors = [n.cpu_factor for n in cluster.nodes]
        assert all(0.7 <= f <= 1.3 for f in factors)
        assert len(set(factors)) > 1


class TestSimulation:
    def test_zero_heterogeneity_unchanged(self):
        dag = build_dag(make_iterative_app(iterations=3))
        base = simulate(dag, small_config(), LruScheme())
        explicit = simulate(
            dag, replace(small_config(), heterogeneity=0.0), LruScheme()
        )
        assert base.jct == explicit.jct

    def test_stragglers_slow_compute_bound_stages(self):
        dag = compute_heavy_dag()
        fast = simulate(dag, small_config(), LruScheme())
        slow = simulate(
            dag,
            replace(small_config(), heterogeneity=0.4, heterogeneity_seed=1),
            LruScheme(),
        )
        # The stage barrier waits for the slowest node, so heterogeneity
        # can only lengthen a compute-bound stage.
        assert slow.jct > fast.jct

    def test_policy_comparison_stays_fair(self):
        """Both policies see the identical heterogeneous cluster."""
        dag = build_dag(make_iterative_app(iterations=4))
        cfg = replace(
            small_config(cache_mb=20.0), heterogeneity=0.3, heterogeneity_seed=5
        )
        lru = simulate(dag, cfg, LruScheme())
        mrd = simulate(dag, cfg, MrdScheme())
        assert mrd.jct <= lru.jct * 1.05

    def test_deterministic_with_heterogeneity(self):
        dag = build_dag(make_iterative_app(iterations=3))
        cfg = replace(small_config(), heterogeneity=0.25, heterogeneity_seed=3)
        a = simulate(dag, cfg, LruScheme())
        b = simulate(dag, cfg, LruScheme())
        assert a.jct == b.jct
