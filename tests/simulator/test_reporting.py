"""Tests for metrics export (JSON/CSV)."""

import csv
import json

import pytest

from repro.dag.dag_builder import build_dag
from repro.policies.scheme import LruScheme
from repro.simulator.engine import simulate
from repro.simulator.reporting import (
    load_metrics_json,
    metrics_from_dict,
    metrics_to_dict,
    render_timeline,
    save_comparison_csv,
    save_metrics_json,
    save_stage_timeline_csv,
)
from repro.core.policy import MrdScheme
from tests.conftest import make_linear_app
from tests.simulator.test_engine import small_config


@pytest.fixture(scope="module")
def metrics():
    dag = build_dag(make_linear_app(num_jobs=3))
    return simulate(dag, small_config(), LruScheme())


class TestDict:
    def test_roundtrips_through_json(self, metrics):
        d = metrics_to_dict(metrics)
        assert json.loads(json.dumps(d)) == d

    def test_fields(self, metrics):
        d = metrics_to_dict(metrics)
        assert d["scheme"] == "LRU"
        assert d["workload"] == "mini-gd"
        assert d["accesses"] == d["hits"] + d["misses"]
        assert len(d["stages"]) == metrics.num_stages_executed

    def test_lossless_object_round_trip(self, metrics):
        # The sweep result store relies on to_dict/from_dict being a
        # perfect inverse pair, including after a JSON hop.
        payload = json.loads(json.dumps(metrics_to_dict(metrics)))
        rebuilt = metrics_from_dict(payload)
        assert metrics_to_dict(rebuilt) == metrics_to_dict(metrics)
        assert rebuilt.hit_ratio == metrics.hit_ratio
        assert rebuilt.mean_node_hit_ratio == metrics.mean_node_hit_ratio
        assert rebuilt.stage_records[-1].duration == \
            metrics.stage_records[-1].duration

    def test_round_trip_preserves_control_stats(self):
        from repro.control.plane import RpcConfig

        dag = build_dag(make_linear_app(num_jobs=3))
        m = simulate(
            dag, small_config(), MrdScheme(),
            control_plane="rpc", control_config=RpcConfig(latency_s=1.0),
        )
        rebuilt = metrics_from_dict(metrics_to_dict(m))
        assert rebuilt.control_plane == "rpc"
        assert rebuilt.control.sent == m.control.sent
        assert rebuilt.control.mean_order_delay == m.control.mean_order_delay

    def test_round_trip_preserves_tenancy_fields(self, metrics):
        # Standalone runs: app_id None, arrival_time 0.0 — and the pair
        # must survive the dict hop unchanged.
        assert metrics.app_id is None
        payload = json.loads(json.dumps(metrics_to_dict(metrics)))
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.app_id is None
        assert rebuilt.arrival_time == 0.0


class TestMultiTenantDict:
    """mt_metrics_to_dict/from_dict are a lossless inverse pair."""

    @pytest.fixture(scope="class")
    def mt_metrics(self):
        from repro.simulator.config import CLUSTERS
        from repro.tenancy import AppSpec, MultiTenantSimulator, PoissonArrivals

        apps = [
            AppSpec(workload="KM", scheme="MRD", partitions=8, share=2.0),
            AppSpec(workload="PR", scheme="LRU", partitions=8),
        ]
        return MultiTenantSimulator(
            apps,
            CLUSTERS["main"].with_cache(60.0),
            arrivals=PoissonArrivals(rate=0.1, seed=3),
            arbitration="global-mrd",
        ).run()

    def test_json_round_trip_is_lossless(self, mt_metrics):
        from repro.tenancy import mt_metrics_from_dict, mt_metrics_to_dict

        d = mt_metrics_to_dict(mt_metrics)
        assert json.loads(json.dumps(d)) == d
        rebuilt = mt_metrics_from_dict(json.loads(json.dumps(d)))
        assert mt_metrics_to_dict(rebuilt) == d
        assert rebuilt == mt_metrics

    def test_per_app_fields_survive(self, mt_metrics):
        from repro.tenancy import mt_metrics_from_dict, mt_metrics_to_dict

        rebuilt = mt_metrics_from_dict(mt_metrics_to_dict(mt_metrics))
        assert [m.app_id for m in rebuilt.apps] == [0, 1]
        assert [m.arrival_time for m in rebuilt.apps] == \
            [m.arrival_time for m in mt_metrics.apps]
        assert rebuilt.arbitration == "global-mrd"
        assert rebuilt.arrival_process == "poisson"
        assert rebuilt.makespan == mt_metrics.makespan

    def test_aggregates_recomputed_not_stored(self, mt_metrics):
        from repro.tenancy import mt_metrics_from_dict, mt_metrics_to_dict

        d = mt_metrics_to_dict(mt_metrics)
        assert "jct_p50" not in d and "aggregate_hit_ratio" not in d
        rebuilt = mt_metrics_from_dict(d)
        assert rebuilt.jct_p50 == mt_metrics.jct_p50
        assert rebuilt.jct_p99 == mt_metrics.jct_p99
        assert rebuilt.aggregate_hit_ratio == mt_metrics.aggregate_hit_ratio
        assert rebuilt.total_evictions == mt_metrics.total_evictions


class TestFiles:
    def test_json_roundtrip(self, metrics, tmp_path):
        path = save_metrics_json([metrics, metrics], tmp_path / "runs.json")
        loaded = load_metrics_json(path)
        assert len(loaded) == 2
        assert loaded[0]["jct"] == pytest.approx(metrics.jct)

    def test_timeline_csv(self, metrics, tmp_path):
        path = save_stage_timeline_csv(metrics, tmp_path / "timeline.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == metrics.num_stages_executed
        assert float(rows[-1]["end"]) == pytest.approx(metrics.jct)

    def test_timeline_renders_every_stage(self, metrics):
        text = render_timeline(metrics)
        assert text.count("seq") == metrics.num_stages_executed
        assert "JCT" in text

    def test_timeline_bars_ordered(self, metrics):
        lines = render_timeline(metrics, width=40).splitlines()[1:]
        # Later stages start at or after earlier ones (left-aligned bars).
        starts = [line.index("|") + len(line.split("|")[1]) -
                  len(line.split("|")[1].lstrip()) for line in lines]
        assert starts == sorted(starts)

    def test_comparison_csv(self, tmp_path):
        dag = build_dag(make_linear_app(num_jobs=3))
        cfg = small_config(cache_mb=20.0)
        runs = [simulate(dag, cfg, LruScheme()), simulate(dag, cfg, MrdScheme())]
        path = save_comparison_csv(runs, tmp_path / "cmp.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert [r["scheme"] for r in rows] == ["LRU", "MRD"]
        assert all(float(r["jct"]) > 0 for r in rows)
