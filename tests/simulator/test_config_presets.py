"""Tests for the Table-4 cluster presets."""

import pytest

from repro.simulator.config import (
    CLUSTERS,
    LRC_CLUSTER,
    MAIN_CLUSTER,
    MEMTUNE_CLUSTER,
    TEST_CLUSTER,
)


class TestPresets:
    def test_main_cluster_matches_table4(self):
        assert MAIN_CLUSTER.num_nodes == 25
        assert MAIN_CLUSTER.slots_per_node == 4
        assert MAIN_CLUSTER.network.bandwidth_mbps == 500.0

    def test_lrc_cluster_matches_table4(self):
        assert LRC_CLUSTER.num_nodes == 20
        assert LRC_CLUSTER.slots_per_node == 2  # m4.large: 2 vCPU
        assert LRC_CLUSTER.network.bandwidth_mbps == 450.0

    def test_memtune_cluster_matches_table4(self):
        assert MEMTUNE_CLUSTER.num_nodes == 6
        assert MEMTUNE_CLUSTER.slots_per_node == 8
        assert MEMTUNE_CLUSTER.network.bandwidth_mbps == 1000.0  # 1 Gbps

    def test_registry_contains_all(self):
        assert set(CLUSTERS) == {"main", "lrc", "memtune", "test"}
        assert CLUSTERS["main"] is MAIN_CLUSTER

    def test_names_match_keys(self):
        for key, cfg in CLUSTERS.items():
            assert cfg.name == key

    def test_test_cluster_is_small(self):
        assert TEST_CLUSTER.num_nodes <= 4

    @pytest.mark.parametrize("cfg", list(CLUSTERS.values()))
    def test_presets_are_immutable(self, cfg):
        with pytest.raises(Exception):
            cfg.num_nodes = 99  # frozen dataclass
