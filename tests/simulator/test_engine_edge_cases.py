"""Engine edge cases: remote reads, promotion knobs, degenerate configs."""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import DiskModel, NetworkModel
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import FifoScheme, LfuScheme, LruScheme, RandomScheme
from repro.simulator.engine import SimulationError, SparkSimulator, simulate
from tests.conftest import make_linear_app


def config(nodes=3, slots=2, cache=1000.0, net_mbps=80.0):
    return ClusterConfig(
        num_nodes=nodes,
        slots_per_node=slots,
        cache_mb_per_node=cache,
        network=NetworkModel(bandwidth_mbps=net_mbps, latency_s=0.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
    )


def misaligned_app():
    """Stage with more tasks than the cached RDD has partitions.

    The wide output has 8 partitions while the cached parent has 4, so
    tasks 4-7 read blocks 0-3 — on a 3-node cluster some of those reads
    are remote (task node ≠ block home node).
    """
    ctx = SparkContext("misaligned")
    data = ctx.text_file("in", size_mb=40.0, num_partitions=4).map(name="d").cache()
    data.count()
    wide = data.reduce_by_key(num_partitions=8, name="wide")
    wide.count()
    return SparkApplication(ctx)


class TestRemoteReads:
    def test_remote_cache_reads_cost_network_time(self):
        dag = build_dag(misaligned_app())
        fast_net = simulate(dag, config(net_mbps=8000.0), LruScheme())
        slow_net = simulate(dag, config(net_mbps=8.0), LruScheme())
        # Hits are identical; only the remote transfer cost differs.
        assert fast_net.stats.hits == slow_net.stats.hits
        assert slow_net.jct > fast_net.jct

    def test_all_blocks_written_despite_misalignment(self):
        dag = build_dag(misaligned_app())
        sim = SparkSimulator(dag, config(), LruScheme())
        sim.run()
        cached = {b.id for b in sim.cluster.master.cached_blocks()}
        data_rdd = next(p.rdd for p in dag.profiles.values())
        assert {b.partition for b in cached if b.rdd_id == data_rdd.id} == {0, 1, 2, 3}


class TestPromotionKnob:
    def test_promotion_knob_changes_churn(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        cfg = config(nodes=2, cache=10.0)
        promoted = simulate(dag, cfg, LruScheme(), promote_on_miss=True)
        unpromoted = simulate(dag, cfg, LruScheme(), promote_on_miss=False)
        # Read-through promotion churns an LRU cache under cyclic scans
        # (every miss displaces a resident block); without promotion the
        # only evictions are insertion-driven.
        assert promoted.stats.evictions > unpromoted.stats.evictions
        assert unpromoted.stats.evictions <= unpromoted.stats.insertions
        # The access totals are identical either way.
        assert promoted.stats.accesses == unpromoted.stats.accesses


class TestDegenerateConfigs:
    def test_zero_cache_still_completes(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        metrics = simulate(dag, config(cache=0.0), LruScheme())
        assert metrics.hit_ratio == 0.0
        assert metrics.num_stages_executed == dag.num_active_stages

    def test_single_node_single_slot(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        metrics = simulate(dag, config(nodes=1, slots=1), LruScheme())
        assert metrics.jct > 0
        assert len(metrics.per_node_hit_ratio) == 1

    def test_many_more_nodes_than_partitions(self):
        dag = build_dag(make_linear_app(num_jobs=3))  # 8 partitions
        metrics = simulate(dag, config(nodes=16), LruScheme())
        assert metrics.num_stages_executed == dag.num_active_stages

    def test_missing_block_raises_simulation_error(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        sim = SparkSimulator(dag, config(), LruScheme())
        # Sabotage: drop the disk copies after the first stage by
        # running and then deleting, then re-running a doctored engine
        # is complex — instead verify the error path directly.
        sim.scheme.prepare(dag)
        from repro.cluster.cluster import build_cluster

        sim.cluster = build_cluster(config(), sim.scheme.policy_factory)
        mgr = sim.cluster.master.managers[0]
        from repro.cluster.block import BlockId

        with pytest.raises(SimulationError, match="neither in memory nor on disk"):
            sim._acquire_block(mgr, BlockId(0, 0), 1.0, 0.0, set())


class TestObliviousSchemes:
    @pytest.mark.parametrize(
        "scheme_factory", [FifoScheme, LfuScheme, lambda: RandomScheme(seed=5)]
    )
    def test_extra_baselines_run_end_to_end(self, scheme_factory):
        dag = build_dag(make_linear_app(num_jobs=4))
        metrics = simulate(dag, config(cache=20.0), scheme_factory())
        assert metrics.jct > 0
        assert 0.0 <= metrics.hit_ratio <= 1.0
