"""Engine tests: exact cache behaviour on hand-built miniature apps."""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import DiskModel, NetworkModel
from repro.core.policy import MrdScheme
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import BeladyScheme, LrcScheme, LruScheme
from repro.simulator.engine import SparkSimulator, simulate
from tests.conftest import make_iterative_app, make_linear_app


def small_config(cache_mb=1000.0, nodes=2, slots=2):
    return ClusterConfig(
        num_nodes=nodes,
        slots_per_node=slots,
        cache_mb_per_node=cache_mb,
        network=NetworkModel(bandwidth_mbps=800.0, latency_s=0.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.0),
    )


class TestHitAccounting:
    def test_ample_cache_all_hits(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        metrics = simulate(dag, small_config(), LruScheme())
        # 3 reading jobs x 8 blocks each, all in memory.
        assert metrics.stats.misses == 0
        assert metrics.stats.hits == 24
        assert metrics.hit_ratio == 1.0

    def test_accesses_match_profile_reads(self):
        dag = build_dag(make_iterative_app(iterations=3))
        metrics = simulate(dag, small_config(), LruScheme())
        # Tasks stride the partitions of each read RDD, so a stage
        # touches every partition of every cached input exactly once
        # regardless of its task count.
        expected_stage_reads = sum(
            r.num_partitions for s in dag.active_stages for r in s.cache_reads
        )
        assert metrics.stats.accesses == expected_stage_reads

    def test_tiny_cache_produces_misses(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        metrics = simulate(dag, small_config(cache_mb=10.0), LruScheme())
        assert metrics.stats.misses > 0
        assert metrics.hit_ratio < 1.0

    def test_misses_cost_time(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        fast = simulate(dag, small_config(), LruScheme())
        slow = simulate(dag, small_config(cache_mb=10.0), LruScheme())
        assert slow.jct > fast.jct


class TestDeterminism:
    @pytest.mark.parametrize("scheme_factory", [LruScheme, LrcScheme, BeladyScheme, MrdScheme])
    def test_same_run_twice_identical(self, scheme_factory):
        dag = build_dag(make_iterative_app(iterations=3))
        cfg = small_config(cache_mb=20.0)
        a = simulate(dag, cfg, scheme_factory())
        b = simulate(dag, cfg, scheme_factory())
        assert a.jct == b.jct
        assert a.stats.hits == b.stats.hits
        assert a.stats.misses == b.stats.misses
        assert a.stats.evictions == b.stats.evictions


class TestStageTiming:
    def test_stage_records_cover_active_stages(self):
        dag = build_dag(make_iterative_app(iterations=3))
        metrics = simulate(dag, small_config(), LruScheme())
        assert metrics.num_stages_executed == dag.num_active_stages
        assert [r.seq for r in metrics.stage_records] == list(range(dag.num_active_stages))

    def test_stages_are_sequential_barriers(self):
        dag = build_dag(make_iterative_app(iterations=3))
        metrics = simulate(dag, small_config(), LruScheme())
        for prev, cur in zip(metrics.stage_records, metrics.stage_records[1:]):
            assert cur.start == pytest.approx(prev.end)
        assert metrics.jct == pytest.approx(metrics.stage_records[-1].end)

    def test_wave_scheduling_with_limited_slots(self):
        """8 equal tasks on 2 nodes x 2 slots run in 2 waves."""
        ctx = SparkContext("waves")
        data = ctx.text_file("in", size_mb=80.0, num_partitions=8)
        data.map(cpu_per_mb=0.1).count()
        dag = build_dag(SparkApplication(ctx))
        metrics = simulate(dag, small_config(), LruScheme())
        (record,) = metrics.stage_records
        # Per task: overhead 0.01 + input 10MB/100MBps = 0.1 + compute
        # (map: 0.1 s/MB x 10 MB = 1.0, textFile: 0.001 x 10 = 0.01).
        per_task = 0.01 + 0.1 + 1.0 + 0.01
        assert record.duration == pytest.approx(2 * per_task)

    def test_more_slots_shorten_stage(self):
        ctx = SparkContext("slots")
        ctx.text_file("in", size_mb=80.0, num_partitions=8).map(cpu_per_mb=0.1).count()
        dag = build_dag(SparkApplication(ctx))
        two = simulate(dag, small_config(slots=2), LruScheme())
        four = simulate(dag, small_config(slots=4), LruScheme())
        assert four.jct < two.jct


class TestUnpersist:
    def test_unpersisted_blocks_leave_cluster(self):
        dag = build_dag(make_iterative_app(iterations=3, unpersist=True))
        sim = SparkSimulator(dag, small_config(), LruScheme())
        metrics = sim.run()
        assert metrics.stats.purged > 0
        unpersisted = {
            p.rdd.id for p in dag.profiles.values() if p.unpersist_after_job is not None
        }
        for mgr in sim.cluster.master.managers:
            leftover = {b.rdd_id for b in mgr.node.memory.block_ids()}
            assert not (leftover & unpersisted)

    def test_unpersist_frees_cache_space(self):
        cfg = small_config(cache_mb=30.0)
        kept = simulate(build_dag(make_iterative_app(iterations=4)), cfg, LruScheme())
        freed = simulate(
            build_dag(make_iterative_app(iterations=4, unpersist=True)), cfg, LruScheme()
        )
        assert freed.hit_ratio >= kept.hit_ratio


class TestPrefetchMechanics:
    def test_full_mrd_issues_and_uses_prefetches(self):
        dag = build_dag(make_iterative_app(iterations=4))
        cfg = small_config(cache_mb=15.0)
        metrics = simulate(dag, cfg, MrdScheme())
        assert metrics.stats.prefetches_issued > 0
        assert metrics.stats.prefetches_used <= metrics.stats.prefetches_issued

    def test_prefetch_never_fires_for_lru(self):
        dag = build_dag(make_iterative_app(iterations=4))
        metrics = simulate(dag, small_config(cache_mb=15.0), LruScheme())
        assert metrics.stats.prefetches_issued == 0

    def test_prefetched_blocks_convert_to_hits(self):
        dag = build_dag(make_iterative_app(iterations=5))
        cfg = small_config(cache_mb=20.0)
        full = simulate(dag, cfg, MrdScheme())
        # At this pressure point prefetches fire and some are consumed
        # as hits before eviction (waits on in-flight fetches count as
        # hits because the I/O was already overlapped).
        assert full.stats.prefetches_issued > 0
        assert full.stats.prefetches_used > 0


class TestMetadata:
    def test_metrics_carry_scheme_and_workload(self):
        dag = build_dag(make_linear_app(name="tagged"))
        metrics = simulate(dag, small_config(), MrdScheme())
        assert metrics.workload == "tagged"
        assert metrics.scheme == "MRD"
        assert metrics.cache_mb_per_node == 1000.0

    def test_per_node_hit_ratios_length(self):
        dag = build_dag(make_linear_app())
        metrics = simulate(dag, small_config(nodes=3), LruScheme())
        assert len(metrics.per_node_hit_ratio) == 3

    def test_normalized_jct(self):
        dag = build_dag(make_linear_app())
        base = simulate(dag, small_config(), LruScheme())
        other = simulate(dag, small_config(), MrdScheme())
        assert other.normalized_jct(base) == pytest.approx(other.jct / base.jct)

    def test_summary_renders(self):
        dag = build_dag(make_linear_app())
        metrics = simulate(dag, small_config(), LruScheme())
        text = metrics.summary()
        assert "LRU" in text and "JCT" in text
