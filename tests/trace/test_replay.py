"""Replay, diffing, and registry integration of ingested traces."""

from pathlib import Path

import pytest

from repro.core.app_profiler import ProfileStore
from repro.core.policy import MrdScheme
from repro.dag.dag_builder import build_dag
from repro.experiments.harness import sweep_workload
from repro.policies.scheme import LruScheme
from repro.simulator.config import TEST_CLUSTER
from repro.simulator.engine import simulate
from repro.trace.events import (
    EVENT_TYPES,
    CacheHit,
    CacheMiss,
    JobStart,
    TraceEvent,
    TraceFormatError,
)
from repro.trace.eventlog import ingest_eventlog, profile_from_trace
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import (
    EVENT_GROUPS,
    GROUP_ORDER,
    TraceDiff,
    build_scheme,
    detect_format,
    diff_trace_files,
    diff_traces,
    replay,
    summarize_events,
    workload_from_eventlog,
)
from repro.workloads.registry import (
    _BY_NAME,
    build_workload,
    get_workload,
    register_workload,
    workload_names,
)

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "eventlogs"
ITERATIVE = FIXTURES / "iterative_ml.jsonl"
LINEAR = FIXTURES / "linear_agg.jsonl"


# ----------------------------------------------------------------------
# format detection / scheme lookup
# ----------------------------------------------------------------------
def test_detect_eventlog():
    assert detect_format(ITERATIVE) == "eventlog"


def test_detect_recorded(tmp_path):
    path = tmp_path / "run.jsonl"
    TraceRecorder(meta={"workload": "KM"}).to_jsonl(path)
    assert detect_format(path) == "recorded"


def test_detect_rejects_garbage(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"neither": true}\n')
    with pytest.raises(TraceFormatError):
        detect_format(path)


def test_detect_rejects_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TraceFormatError, match="empty"):
        detect_format(path)


@pytest.mark.parametrize("name", ["lru", "LRU", "mrd", "MRD-evict", "belady"])
def test_build_scheme_case_insensitive(name):
    assert build_scheme(name).name


def test_build_scheme_unknown():
    with pytest.raises(ValueError, match="unknown policy"):
        build_scheme("arc")


# ----------------------------------------------------------------------
# replaying event logs
# ----------------------------------------------------------------------
def test_replay_eventlog_under_lru_and_mrd():
    lru = replay(ITERATIVE, scheme="lru", cluster="test", cache_fraction=1.0)
    mrd = replay(ITERATIVE, scheme="mrd", cluster="test", cache_fraction=1.0)
    assert lru.source == mrd.source == "eventlog"
    assert lru.metrics.jct > 0 and mrd.metrics.jct > 0
    assert len(lru.events) > 0 and len(mrd.events) > 0
    # The cached training set is re-read by two later jobs: with the
    # full working set resident both policies serve them from memory.
    assert lru.metrics.stats.hits > 0
    assert mrd.metrics.stats.hits > 0


def test_identical_replays_have_zero_divergence():
    a = replay(LINEAR, scheme="mrd", cluster="test")
    b = replay(LINEAR, scheme="mrd", cluster="test")
    assert diff_traces(a.events, b.events) is None


def test_different_schemes_diverge():
    # A constrained cache makes the policies take different actions
    # (MRD prefetches/purges; LRU does neither).
    a = replay(LINEAR, scheme="lru", cluster="test", cache_fraction=0.5)
    b = replay(LINEAR, scheme="mrd", cluster="test", cache_fraction=0.5)
    diff = diff_traces(a.events, b.events)
    assert diff is not None
    assert "diverge at event" in diff.describe()


def test_replay_recorded_trace_rebuilds_workload(tmp_path):
    recorded = tmp_path / "km.jsonl"
    dag = build_dag(build_workload("KM", partitions=4))
    recorder = TraceRecorder(meta={
        "workload": "KM", "partitions": 4, "cluster": "test", "cache_mb": 64.0,
    })
    simulate(dag, TEST_CLUSTER.with_cache(64.0), MrdScheme(), recorder=recorder)
    recorder.to_jsonl(recorded)

    again = replay(recorded, scheme="mrd")
    assert again.source == "recorded"
    assert again.cache_mb_per_node == 64.0  # taken from the meta header
    assert diff_traces(recorder.events, again.events) is None


def test_replay_recorded_trace_without_workload_meta(tmp_path):
    path = tmp_path / "anon.jsonl"
    TraceRecorder().to_jsonl(path)
    # No meta at all -> not even a type:meta line; write one event so
    # detection sees a recorded trace.
    path.write_text('{"type": "job_start", "t": 0.0, "job_id": 0}\n')
    with pytest.raises(TraceFormatError, match="workload"):
        replay(path)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def test_diff_length_mismatch():
    a = replay(LINEAR, scheme="lru", cluster="test")
    diff = diff_traces(a.events, a.events[:-1])
    assert diff is not None
    assert diff.index == len(a.events) - 1
    assert "ends early" in diff.describe()


def test_diff_trace_files(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    ra = replay(LINEAR, scheme="mrd", cluster="test")
    rb = replay(LINEAR, scheme="mrd", cluster="test")
    ra.recorder.to_jsonl(a)
    rb.recorder.to_jsonl(b)
    assert diff_trace_files(a, b) is None


# ----------------------------------------------------------------------
# traces as registry workloads + recurring-mode experiments
# ----------------------------------------------------------------------
def test_trace_workload_registers_and_builds():
    spec = workload_from_eventlog(ITERATIVE, name="ML-trace")
    try:
        register_workload(spec)
        assert "ML-trace" in workload_names()
        assert "ML-trace" in workload_names(suite="trace")
        assert get_workload("ML-trace") is spec
        app = build_workload("ML-trace")
        assert app.signature == "IterativeML"
        # Each build is isolated: fresh RDD objects every time.
        assert build_workload("ML-trace").rdds[0] is not app.rdds[0]
    finally:
        _BY_NAME.pop("ML-trace", None)


def test_register_rejects_builtin_collision():
    spec = workload_from_eventlog(ITERATIVE, name="KM")
    with pytest.raises(ValueError, match="built-in"):
        register_workload(spec)


def test_register_requires_replace_flag():
    spec = workload_from_eventlog(ITERATIVE, name="dup-trace")
    try:
        register_workload(spec)
        with pytest.raises(ValueError, match="already registered"):
            register_workload(spec)
        register_workload(spec, replace=True)  # explicit replace is fine
    finally:
        _BY_NAME.pop("dup-trace", None)


def test_fig9_style_recurring_sweep_from_ingested_profile(tmp_path):
    """The fig9 harness can consume a profile derived from an event log.

    An ingested trace's profile is persisted to a store; a recurring-mode
    MRD scheme sharing that store then sweeps the ingested DAG through
    the standard harness — the paper's recurring-application experiment
    with a real (well, fixture) event log as the source.
    """
    store = ProfileStore(tmp_path / "profiles.json")
    trace = ingest_eventlog(ITERATIVE)
    profile_from_trace(trace, store=store)

    sweep = sweep_workload(
        trace.app_name,
        schemes={
            "LRU": LruScheme,
            "MRD-recurring": lambda: MrdScheme(
                mode="recurring", profile_store=store
            ),
        },
        cluster=TEST_CLUSTER,
        cache_fractions=(0.5, 1.0),
        dag=trace.dag,
    )
    for fraction in (0.5, 1.0):
        run = sweep.get("MRD-recurring", fraction)
        assert run.metrics.jct > 0
    # With the whole working set cacheable the recurring profile keeps
    # the re-read training set resident.
    assert sweep.get("MRD-recurring", 1.0).hit_ratio == 1.0


def test_replay_profile_store_prefeeds_mrd():
    store = ProfileStore()
    result = replay(
        ITERATIVE, scheme="mrd", cluster="test", cache_fraction=1.0,
        profile_store=store,
    )
    stored = store.get("IterativeML")
    assert stored is not None and stored.complete
    assert result.metrics.stats.hits > 0


class TestEventSummary:
    def test_groups_cover_every_registered_kind(self):
        # EVENT_GROUPS is the pivot EVT301 cross-checks against the
        # TraceEvent hierarchy: it must stay exactly in sync with the
        # wire-format registry.
        assert set(EVENT_GROUPS) == set(EVENT_TYPES)
        assert set(EVENT_GROUPS.values()) == set(GROUP_ORDER)

    def test_summarize_counts_by_group_then_kind(self):
        events = [
            JobStart(t=0.0, job_id=0),
            CacheHit(t=1.0, rdd_id=0, partition=0, node_id=0),
            CacheHit(t=2.0, rdd_id=0, partition=1, node_id=0),
            CacheMiss(t=3.0, rdd_id=1, partition=2, node_id=1),
        ]
        summary = summarize_events(events)
        assert list(summary) == ["lifecycle", "cache"]  # GROUP_ORDER
        assert summary["cache"] == {"cache_hit": 2, "cache_miss": 1}
        assert summary["lifecycle"] == {"job_start": 1}

    def test_empty_stream_summarizes_empty(self):
        assert summarize_events([]) == {}

    def test_unknown_kind_raises_schema_drift(self):
        class Rogue(TraceEvent):
            kind = "rogue_kind"

        with pytest.raises(TraceFormatError, match="rogue_kind"):
            summarize_events([Rogue(t=0.0)])

    def test_recorded_run_summarizes_cleanly(self):
        from tests.conftest import make_iterative_app

        recorder = TraceRecorder()
        dag = build_dag(make_iterative_app(iterations=3))
        simulate(
            dag, TEST_CLUSTER.with_cache(48.0), LruScheme(), recorder=recorder
        )
        summary = summarize_events(recorder.events)
        total = sum(n for kinds in summary.values() for n in kinds.values())
        assert total == len(recorder.events) > 0
        assert "lifecycle" in summary and "cache" in summary
