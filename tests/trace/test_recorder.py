"""Recorder integration: recorded traces agree with the simulator state."""

import math

import pytest

from repro.core.mrd_table import MrdTable
from repro.core.policy import MrdScheme
from repro.core.reference_distance import parse_application_references
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import LruScheme
from repro.simulator.config import TEST_CLUSTER
from repro.simulator.engine import simulate
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from tests.conftest import make_iterative_app


@pytest.fixture
def dag():
    return build_dag(make_iterative_app(iterations=3))


def record_run(dag, scheme, cache_mb=48.0):
    recorder = TraceRecorder(meta={"scheme": scheme.name})
    metrics = simulate(
        dag, TEST_CLUSTER.with_cache(cache_mb), scheme, recorder=recorder
    )
    return recorder, metrics


# ----------------------------------------------------------------------
# disabled-path behaviour
# ----------------------------------------------------------------------
def test_default_run_records_nothing(dag):
    # No recorder passed: the engine uses the shared NULL_RECORDER.
    metrics = simulate(dag, TEST_CLUSTER.with_cache(48.0), LruScheme())
    assert metrics.jct > 0
    assert len(NULL_RECORDER) == 0


def test_null_recorder_discards_even_explicit_emits(dag):
    rec = NullRecorder()
    assert rec.enabled is False
    simulate(dag, TEST_CLUSTER.with_cache(48.0), LruScheme(), recorder=rec)
    assert len(rec) == 0


def test_disabled_recording_leaves_no_shared_state(dag):
    """The engine must never mutate the shared NULL_RECORDER."""
    before = (NULL_RECORDER.now, NULL_RECORDER.distance_of)
    simulate(dag, TEST_CLUSTER.with_cache(48.0), MrdScheme())
    assert (NULL_RECORDER.now, NULL_RECORDER.distance_of) == before


# ----------------------------------------------------------------------
# recorded-trace consistency
# ----------------------------------------------------------------------
def test_hit_miss_counts_match_metrics(dag):
    recorder, metrics = record_run(dag, LruScheme())
    assert len(recorder.of_kind("cache_hit")) == metrics.stats.hits
    assert len(recorder.of_kind("cache_miss")) == metrics.stats.misses
    assert len(recorder.of_kind("eviction")) == metrics.stats.evictions


def test_stage_events_bracket_every_active_stage(dag):
    recorder, _ = record_run(dag, LruScheme())
    starts = recorder.of_kind("stage_start")
    ends = recorder.of_kind("stage_end")
    assert [e.seq for e in starts] == list(range(dag.num_active_stages))
    assert [e.seq for e in ends] == list(range(dag.num_active_stages))
    for s, e in zip(starts, ends):
        assert s.t <= e.t


def test_job_start_events_in_submission_order(dag):
    recorder, _ = record_run(dag, LruScheme())
    assert [e.job_id for e in recorder.of_kind("job_start")] == list(
        range(dag.num_jobs)
    )


def test_timestamps_are_monotone_per_stage(dag):
    recorder, _ = record_run(dag, MrdScheme())
    last_stage_t = 0.0
    for ev in recorder.events:
        if ev.kind == "stage_start":
            assert ev.t >= last_stage_t
            last_stage_t = ev.t


def test_lru_evictions_carry_no_distance(dag):
    recorder, metrics = record_run(dag, LruScheme(), cache_mb=24.0)
    evictions = recorder.of_kind("eviction")
    assert evictions, "cache too large to exercise eviction"
    assert all(ev.distance is None for ev in evictions)


def test_mrd_eviction_distance_matches_table_state(dag):
    """Every recorded eviction carries the MRD_Table distance at its tick.

    Reconstructed independently: a fresh table loaded with the full
    recurring profile, advanced through the same stage sequence the
    trace records, must report exactly the distance stamped on each
    eviction event.
    """
    recorder, metrics = record_run(dag, MrdScheme(), cache_mb=24.0)
    evictions = recorder.of_kind("eviction")
    assert evictions, "cache too large to exercise eviction"

    table = MrdTable(metric="stage")
    table.add_references(parse_application_references(dag))
    seq = 0
    checked = 0
    for ev in recorder.events:
        if ev.kind == "stage_start":
            seq = ev.seq
            table.advance(seq, dag.job_of_seq(seq))
        elif ev.kind == "eviction":
            assert ev.distance is not None
            expected = table.distance(ev.rdd_id)
            if math.isinf(expected):
                assert math.isinf(ev.distance)
            else:
                assert ev.distance == expected
            checked += 1
    assert checked == len(evictions)


def test_mrd_records_purges_and_prefetches(dag):
    recorder, metrics = record_run(dag, MrdScheme(), cache_mb=48.0)
    issued = recorder.of_kind("prefetch_issue")
    completed = recorder.of_kind("prefetch_complete")
    assert len(issued) == metrics.stats.prefetches_issued
    assert len(completed) <= len(issued)
    for ev in issued:
        assert ev.eta >= ev.t
    purges = recorder.of_kind("purge")
    assert sum(p.dropped_blocks for p in purges) == metrics.stats.purged


# ----------------------------------------------------------------------
# round-trip through files
# ----------------------------------------------------------------------
def test_recorder_jsonl_roundtrip(dag, tmp_path):
    recorder, _ = record_run(dag, MrdScheme(), cache_mb=24.0)
    path = tmp_path / "run.jsonl"
    recorder.to_jsonl(path)
    back = TraceRecorder.from_jsonl(path)
    assert back.meta == recorder.meta
    assert back.events == recorder.events


def test_recorder_chrome_export(dag, tmp_path):
    recorder, _ = record_run(dag, MrdScheme(), cache_mb=24.0)
    trace = recorder.chrome_trace()
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == dag.num_active_stages
