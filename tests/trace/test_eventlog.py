"""Event-log ingestion: fixtures parse into faithful application DAGs."""

import json
from pathlib import Path

import pytest

from repro.core.app_profiler import AppProfiler, ProfileStore
from repro.core.reference_distance import parse_application_references
from repro.dag.rdd import NarrowDependency, ShuffleDependency
from repro.trace.eventlog import ingest_eventlog, profile_from_trace
from repro.trace.spark_schema import EventLogError, UnsupportedEventError

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "eventlogs"


@pytest.fixture
def iterative():
    return ingest_eventlog(FIXTURES / "iterative_ml.jsonl")


@pytest.fixture
def linear():
    return ingest_eventlog(FIXTURES / "linear_agg.jsonl")


@pytest.fixture
def shared():
    return ingest_eventlog(FIXTURES / "shared_lineage.jsonl")


# ----------------------------------------------------------------------
# DAG reconstruction
# ----------------------------------------------------------------------
class TestIterativeMl:
    def test_shape(self, iterative):
        assert iterative.app_name == "IterativeML"
        assert iterative.spark_version == "3.5.1"
        assert iterative.dag.num_jobs == 3
        # One narrow-only stage per job.
        assert iterative.dag.num_active_stages == 3
        assert not iterative.warnings

    def test_cached_rdd_mapped(self, iterative):
        # Spark RDD 1 (the training set) is the only cached RDD.
        repro_id = iterative.rdd_id_map[1]
        rdd = iterative.application.rdds[repro_id]
        assert rdd.is_cached
        assert [r.id for r in iterative.application.ctx.cached_rdds] == [repro_id]

    def test_dependencies_all_narrow(self, iterative):
        for rdd in iterative.application.rdds:
            for dep in rdd.deps:
                assert isinstance(dep, NarrowDependency)

    def test_sizes_from_max_memory_sighting(self, iterative):
        # 64 MB over 4 partitions (the largest Memory Size the log reports).
        rdd = iterative.application.rdds[iterative.rdd_id_map[1]]
        assert rdd.partition_size_mb == pytest.approx(16.0)

    def test_cost_hints_applied(self, iterative):
        # Stage 0 ran 4 tasks at 120 ms each over 3 newly attributed
        # RDDs: mean task seconds spread evenly.
        hint = iterative.stage_hints[0]
        assert hint.tasks_seen == 4
        assert hint.mean_task_seconds == pytest.approx(0.12)
        rdd0 = iterative.application.rdds[iterative.rdd_id_map[0]]
        assert rdd0.compute_cost == pytest.approx(0.12 / 3)

    def test_profile_references_match_dag(self, iterative):
        profile = profile_from_trace(iterative)
        assert profile.complete
        assert profile.references == parse_application_references(iterative.dag)
        # The training set is re-read by jobs 1 and 2.
        assert len(profile.references) == 2


class TestLinearAgg:
    def test_two_stages_per_job(self, linear):
        assert linear.dag.num_jobs == 2
        assert linear.dag.num_active_stages == 4

    def test_shuffle_edges_classified(self, linear):
        # shuffled-j depends on the cached map output across a stage
        # boundary -> shuffle; aggregated-j is pipelined -> narrow.
        app = linear.application
        shuffled = app.rdds[linear.rdd_id_map[2]]
        aggregated = app.rdds[linear.rdd_id_map[3]]
        assert isinstance(shuffled.deps[0], ShuffleDependency)
        assert isinstance(aggregated.deps[0], NarrowDependency)

    def test_distinct_shuffle_ids(self, linear):
        ids = [
            dep.shuffle_id
            for rdd in linear.application.rdds
            for dep in rdd.deps
            if isinstance(dep, ShuffleDependency)
        ]
        assert len(ids) == len(set(ids)) == 2


class TestSharedLineage:
    def test_skipped_stage_reconstructed(self, shared):
        # Job 1 reuses job 0's shuffle output: 4 stages total, 3 active.
        assert shared.dag.num_stages == 4
        assert shared.dag.num_active_stages == 3

    def test_unpersist_event_replayed(self, shared):
        events = shared.application.ctx.unpersist_events
        assert len(events) == 1
        assert events[0].rdd.id == shared.rdd_id_map[1]
        assert events[0].after_job_id == 1


# ----------------------------------------------------------------------
# error handling
# ----------------------------------------------------------------------
def _write_log(tmp_path, lines):
    path = tmp_path / "log.jsonl"
    path.write_text("\n".join(
        line if isinstance(line, str) else json.dumps(line) for line in lines
    ) + "\n")
    return path


def test_unsupported_spark_version(tmp_path):
    path = _write_log(tmp_path, [
        {"Event": "SparkListenerLogStart", "Spark Version": "0.9.2"},
    ])
    with pytest.raises(UnsupportedEventError, match="major version 0"):
        ingest_eventlog(path)


def test_unknown_event_type(tmp_path):
    path = _write_log(tmp_path, [
        {"Event": "SparkListenerLogStart", "Spark Version": "3.5.1"},
        {"Event": "SparkListenerQuantumFluctuation"},
    ])
    with pytest.raises(UnsupportedEventError, match="QuantumFluctuation"):
        ingest_eventlog(path)


def test_truncated_json_line_named(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text(
        '{"Event": "SparkListenerLogStart", "Spark Version": "3.5.1"}\n'
        '{"Event": "SparkListenerJobSta'
    )
    with pytest.raises(EventLogError, match=":2:"):
        ingest_eventlog(path)


def test_non_listener_json_rejected(tmp_path):
    path = _write_log(tmp_path, [{"not": "an event"}])
    with pytest.raises(EventLogError, match="missing 'Event' field"):
        ingest_eventlog(path)


def test_log_without_jobs_rejected(tmp_path):
    path = _write_log(tmp_path, [
        {"Event": "SparkListenerLogStart", "Spark Version": "3.5.1"},
        {"Event": "SparkListenerApplicationEnd", "Timestamp": 1},
    ])
    with pytest.raises(EventLogError, match="no job-start events"):
        ingest_eventlog(path)


def test_missing_required_field(tmp_path):
    path = _write_log(tmp_path, [
        {"Event": "SparkListenerJobStart", "Stage Infos": [], "Stage IDs": []},
    ])
    with pytest.raises(EventLogError, match="Job ID"):
        ingest_eventlog(path)


def test_ignored_events_skipped_silently(tmp_path, iterative):
    # The fixtures already interleave environment/executor noise; spot
    # check that adding more of it changes nothing.
    source = (FIXTURES / "iterative_ml.jsonl").read_text().splitlines()
    noisy = source[:1] + [
        json.dumps({"Event": "SparkListenerBlockUpdated", "Block Updated Info": {}}),
    ] + source[1:]
    path = _write_log(tmp_path, noisy)
    trace = ingest_eventlog(path)
    assert trace.dag.num_jobs == iterative.dag.num_jobs


# ----------------------------------------------------------------------
# profile-store integration (the recurring-mode path)
# ----------------------------------------------------------------------
def test_profile_feeds_recurring_profiler(iterative, tmp_path):
    store = ProfileStore(tmp_path / "profiles.json")
    profile_from_trace(iterative, store=store)

    # A recurring-mode profiler over a *fresh* ingest of the same log
    # (same signature) starts fully informed: no ad-hoc downgrade.
    again = ingest_eventlog(FIXTURES / "iterative_ml.jsonl")
    profiler = AppProfiler(again.dag, mode="recurring", store=store)
    assert profiler.mode == "recurring"
    assert profiler.initial_references() == parse_application_references(again.dag)


def test_reingest_is_deterministic(iterative):
    again = ingest_eventlog(FIXTURES / "iterative_ml.jsonl")
    assert again.rdd_id_map == iterative.rdd_id_map
    assert again.signature == iterative.signature
    assert [r.name for r in again.application.rdds] == [
        r.name for r in iterative.application.rdds
    ]
