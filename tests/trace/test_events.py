"""Round-trip and format tests for the trace event vocabulary."""

import json
import math

import pytest

from repro.trace.events import (
    EVENT_TYPES,
    BlockMigrate,
    CacheHit,
    CacheMiss,
    Eviction,
    JobStart,
    MessageDeliver,
    MessageDrop,
    MessageSend,
    PrefetchCancel,
    PrefetchComplete,
    PrefetchIssue,
    Purge,
    StageEnd,
    StageStart,
    TraceFormatError,
    WorkerDeregisterEvent,
    WorkerRegisterEvent,
    event_from_dict,
    read_jsonl,
    to_chrome_trace,
    write_jsonl,
)

#: One fully populated instance of every event type.
SAMPLE_EVENTS = [
    JobStart(t=0.0, job_id=0),
    StageStart(t=0.0, seq=0, stage_id=0, job_id=0, num_tasks=8),
    CacheMiss(t=0.5, rdd_id=1, partition=3, node_id=2, where="disk"),
    CacheHit(t=0.75, rdd_id=1, partition=4, node_id=0, source="memory"),
    CacheHit(t=0.8, rdd_id=1, partition=5, node_id=1, source="buffer"),
    Eviction(t=1.0, rdd_id=2, partition=0, node_id=1, size_mb=16.0,
             distance=3.0, cause="insert"),
    Eviction(t=1.1, rdd_id=3, partition=1, node_id=0, size_mb=8.0,
             distance=None, cause="prefetch"),
    Purge(t=1.5, rdd_id=2, node_id=3, dropped_blocks=4, drop_disk=True),
    PrefetchIssue(t=2.0, rdd_id=4, partition=2, node_id=1, size_mb=12.0, eta=2.4),
    PrefetchComplete(t=2.4, rdd_id=4, partition=2, node_id=1, admitted=False),
    PrefetchCancel(t=2.5, rdd_id=5, partition=0, node_id=2, reason="unpersisted"),
    MessageSend(t=2.6, msg="purge_order", node_id=1, deliver_at=2.7),
    MessageDeliver(t=2.7, msg="purge_order", node_id=1, sent_at=2.6, stale=True),
    MessageDrop(t=2.8, msg="cache_status", node_id=2, reason="outage"),
    WorkerRegisterEvent(t=2.85, node_id=4, reason="join"),
    BlockMigrate(t=2.9, rdd_id=6, partition=1, from_node=3, to_node=0, size_mb=24.0),
    WorkerDeregisterEvent(t=2.95, node_id=3, reason="decommission"),
    StageEnd(t=3.0, seq=0, stage_id=0, job_id=0),
]


def test_sample_covers_every_event_type():
    assert {ev.kind for ev in SAMPLE_EVENTS} == set(EVENT_TYPES)


@pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.kind)
def test_dict_roundtrip(event):
    data = event.to_dict()
    assert data["type"] == event.kind
    assert event_from_dict(json.loads(json.dumps(data))) == event


def test_jsonl_roundtrip_with_meta(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, SAMPLE_EVENTS, meta={"workload": "KM", "cache_mb": 64.0})
    meta, events = read_jsonl(path)
    assert meta == {"workload": "KM", "cache_mb": 64.0}
    assert events == SAMPLE_EVENTS


def test_jsonl_roundtrip_without_meta(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, SAMPLE_EVENTS)
    meta, events = read_jsonl(path)
    assert meta == {}
    assert events == SAMPLE_EVENTS


def test_infinite_distance_survives_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    ev = Eviction(t=0.0, rdd_id=0, partition=0, node_id=0, size_mb=1.0,
                  distance=math.inf)
    write_jsonl(path, [ev])
    _, [back] = read_jsonl(path)
    assert back.distance == math.inf


def test_unknown_type_rejected():
    with pytest.raises(TraceFormatError, match="unknown trace event type"):
        event_from_dict({"type": "warp_drive", "t": 0.0})


def test_missing_type_rejected():
    with pytest.raises(TraceFormatError, match="no 'type' field"):
        event_from_dict({"t": 0.0})


def test_malformed_record_rejected():
    with pytest.raises(TraceFormatError, match="malformed"):
        event_from_dict({"type": "job_start"})  # missing required t/job_id


def test_read_jsonl_names_bad_line(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"type": "job_start", "t": 0.0, "job_id": 0}\n{oops\n')
    with pytest.raises(TraceFormatError, match=":2:"):
        read_jsonl(path)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_shapes():
    trace = to_chrome_trace(SAMPLE_EVENTS, meta={"workload": "KM"})
    events = trace["traceEvents"]
    durations = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    # One stage pair -> one duration span with the right extent.
    assert len(durations) == 1
    assert durations[0]["ts"] == 0.0
    assert durations[0]["dur"] == pytest.approx(3.0 * 1e6)
    # Everything else -> one instant each (the stage pair merged above).
    assert len(instants) == len(SAMPLE_EVENTS) - 2
    hit = next(e for e in instants if e["name"] == "cache_hit")
    assert hit["tid"] >= 1  # node tracks start at 1
    assert trace["otherData"] == {"workload": "KM"}


def test_chrome_trace_is_valid_json_with_inf_distance():
    ev = Eviction(t=0.0, rdd_id=0, partition=0, node_id=0, size_mb=1.0,
                  distance=math.inf)
    text = json.dumps(to_chrome_trace([ev]))
    args = json.loads(text)["traceEvents"][0]["args"]
    assert args["distance"] == "inf"  # Chrome's parser rejects Infinity


def test_chrome_trace_unclosed_stage_renders_zero_width():
    start = StageStart(t=1.0, seq=0, stage_id=0, job_id=0, num_tasks=1)
    events = to_chrome_trace([start])["traceEvents"]
    assert len(events) == 1
    assert events[0]["dur"] == 0.0
