"""End-to-end tests for the ``repro trace`` CLI subcommands."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "eventlogs"
ITERATIVE = str(FIXTURES / "iterative_ml.jsonl")
LINEAR = str(FIXTURES / "linear_agg.jsonl")


class TestIngest:
    def test_summarizes_fixture(self, capsys):
        assert main(["trace", "ingest", ITERATIVE]) == 0
        out = capsys.readouterr().out
        assert "IterativeML" in out
        assert "jobs         3" in out

    def test_writes_profile_store(self, capsys, tmp_path):
        store = tmp_path / "profiles.json"
        assert main([
            "trace", "ingest", ITERATIVE, "--profile-store", str(store),
        ]) == 0
        assert "IterativeML" in json.loads(store.read_text())
        assert "references" in capsys.readouterr().out

    def test_bad_log_exits_cleanly(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"Event": "SparkListenerMystery"}\n')
        with pytest.raises(SystemExit, match="ingest failed"):
            main(["trace", "ingest", str(bad)])


class TestReplay:
    def test_replay_under_lru_and_mrd(self, capsys):
        for policy in ("lru", "mrd"):
            assert main([
                "trace", "replay", ITERATIVE,
                "--policy", policy, "--cluster", "test",
            ]) == 0
            out = capsys.readouterr().out
            assert "source=eventlog" in out
            assert "JCT" in out

    def test_scheme_flag_is_alias_for_policy(self, capsys):
        assert main([
            "trace", "replay", ITERATIVE, "--scheme", "mrd", "--cluster", "test",
        ]) == 0
        assert "scheme=MRD" in capsys.readouterr().out

    def test_writes_jsonl_and_chrome(self, capsys, tmp_path):
        out_jsonl = tmp_path / "run.jsonl"
        out_chrome = tmp_path / "run.chrome.json"
        assert main([
            "trace", "replay", ITERATIVE, "--policy", "mrd", "--cluster", "test",
            "-o", str(out_jsonl), "--chrome", str(out_chrome),
        ]) == 0
        assert out_jsonl.exists()
        chrome = json.loads(out_chrome.read_text())
        assert chrome["traceEvents"]

    def test_unknown_policy_exits_cleanly(self):
        with pytest.raises(SystemExit, match="replay failed"):
            main(["trace", "replay", ITERATIVE, "--policy", "arc"])


class TestDiff:
    def _replayed(self, tmp_path, name, policy):
        path = tmp_path / name
        assert main([
            "trace", "replay", LINEAR, "--policy", policy, "--cluster", "test",
            "-o", str(path),
        ]) == 0
        return str(path)

    def test_identical_replays_report_zero_divergence(self, capsys, tmp_path):
        a = self._replayed(tmp_path, "a.jsonl", "mrd")
        b = self._replayed(tmp_path, "b.jsonl", "mrd")
        capsys.readouterr()
        assert main(["trace", "diff", a, b]) == 0
        assert "identical (zero divergence)" in capsys.readouterr().out

    def test_divergent_traces_report_first_difference(self, capsys, tmp_path):
        a = self._replayed(tmp_path, "a.jsonl", "lru")
        b = self._replayed(tmp_path, "b.jsonl", "mrd")
        capsys.readouterr()
        assert main(["trace", "diff", a, b]) == 1
        assert "diverge at event" in capsys.readouterr().out

    def test_missing_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="diff failed"):
            main(["trace", "diff", str(tmp_path / "no.jsonl"), str(tmp_path / "pe.jsonl")])


class TestRecord:
    def test_record_workload_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "km.jsonl"
        assert main([
            "trace", "record", "KM", "--scheme", "mrd", "--cluster", "test",
            "--partitions", "4", "-o", str(out),
        ]) == 0
        assert "recorded" in capsys.readouterr().out
        # The recorded trace is itself replayable (meta carries the
        # workload, cluster and cache size).
        assert main(["trace", "replay", str(out), "--policy", "mrd"]) == 0
        assert "source=recorded" in capsys.readouterr().out
