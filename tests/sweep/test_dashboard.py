"""Dashboard payload schema, statuses, pivots, HTML, and the HTTP server."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.sweep.dashboard import (
    CELL_STATES,
    DASHBOARD_SCHEMA_VERSION,
    DashboardServer,
    dashboard_payload,
    render_html,
    write_dashboard,
)
from repro.sweep.runner import run_cells
from repro.sweep.service import LeaseManager, publish_manifest
from repro.sweep.spec import CellSpec, GridSpec
from repro.sweep.store import STATUS_ERROR, CellResult, ResultStore


def _cells(fractions=(0.3, 0.6), schemes=("LRU", "MRD")) -> list[CellSpec]:
    return GridSpec(
        workloads=["SP"], schemes=list(schemes),
        cache_fractions=list(fractions), clusters=["test"], partitions=8,
    ).cells()


@pytest.fixture()
def drained_store(tmp_path) -> ResultStore:
    store = ResultStore(tmp_path / "store")
    cells = _cells()
    publish_manifest(store, cells)
    run_cells(cells, jobs=1, store=store).raise_on_error()
    return store


class TestPayload:
    def test_schema_and_top_level_keys(self, drained_store):
        payload = dashboard_payload(drained_store)
        assert payload["schema"] == DASHBOARD_SCHEMA_VERSION
        assert set(payload) == {
            "schema", "store", "digest", "progress", "eta_s",
            "workers", "cells", "pivots",
        }
        assert payload["digest"] == drained_store.content_digest()

    def test_payload_round_trips_through_json(self, drained_store):
        payload = dashboard_payload(drained_store)
        assert json.loads(json.dumps(payload)) == payload

    def test_progress_counts_a_drained_grid(self, drained_store):
        progress = dashboard_payload(drained_store)["progress"]
        assert progress["total"] == 4
        assert progress["done"] == 4 and progress["ok"] == 4
        assert progress["error"] == progress["running"] == progress["pending"] == 0
        assert progress["done_fraction"] == 1.0

    def test_cell_rows_carry_metrics(self, drained_store):
        rows = dashboard_payload(drained_store)["cells"]
        assert len(rows) == 4
        assert [r["fingerprint"] for r in rows] == sorted(
            r["fingerprint"] for r in rows
        )
        for row in rows:
            assert row["status"] in CELL_STATES
            assert row["status"] == "ok"
            assert row["jct"] > 0
            assert 0.0 <= row["hit_ratio"] <= 1.0
            assert row["error"] is None

    def test_statuses_cover_all_four_states(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = _cells(fractions=(0.2, 0.3, 0.5, 0.7), schemes=("LRU",))
        publish_manifest(store, cells)
        ok, bad, leased, idle = cells
        run_cells([ok], jobs=1, store=store).raise_on_error()
        store.put(CellResult(
            fingerprint=bad.fingerprint(), spec=bad.to_dict(),
            status=STATUS_ERROR,
            error={"type": "RuntimeError", "message": "boom", "traceback": ""},
        ))
        assert LeaseManager(store, "w7", ttl_s=3600.0).acquire(leased.fingerprint())

        payload = dashboard_payload(store, lease_ttl_s=3600.0)
        by_fingerprint = {r["fingerprint"]: r for r in payload["cells"]}
        assert by_fingerprint[ok.fingerprint()]["status"] == "ok"
        assert by_fingerprint[bad.fingerprint()]["status"] == "error"
        assert "RuntimeError: boom" in by_fingerprint[bad.fingerprint()]["error"]
        assert by_fingerprint[leased.fingerprint()]["status"] == "running"
        assert by_fingerprint[leased.fingerprint()]["worker"] == "w7"
        assert by_fingerprint[idle.fingerprint()]["status"] == "pending"
        assert payload["progress"]["running"] == 1
        assert payload["progress"]["pending"] == 1

    def test_eta_is_none_when_drained_and_finite_when_not(self, drained_store):
        assert dashboard_payload(drained_store)["eta_s"] is None
        # Add pending work: the mean elapsed of done cells gives an ETA.
        extra = _cells(fractions=(0.9,))
        publish_manifest(drained_store, extra)
        eta = dashboard_payload(drained_store)["eta_s"]
        assert eta is not None and eta >= 0

    def test_pivots_only_for_varied_axes(self, drained_store):
        pivots = dashboard_payload(drained_store)["pivots"]
        # The grid varies scheme and cache fraction; nothing else.
        assert set(pivots) == {"scheme", "cache"}
        schemes = {row["value"] for row in pivots["scheme"]}
        assert schemes == {"LRU", "MRD"}
        for row in pivots["scheme"]:
            assert row["cells"] == 2 and row["ok"] == 2
            assert row["mean_jct"] > 0

    def test_results_outside_the_manifest_still_listed(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = _cells(fractions=(0.4,), schemes=("LRU",))
        run_cells(cells, jobs=1, store=store).raise_on_error()  # no manifest
        payload = dashboard_payload(store)
        assert payload["progress"]["total"] == 1
        assert payload["cells"][0]["status"] == "ok"

    def test_workers_liveness_split(self, tmp_path, monkeypatch):
        import repro.sweep.service as service

        store = ResultStore(tmp_path)
        service.write_worker_heartbeat(store, "fresh", executed=2)
        service.write_worker_heartbeat(store, "crashed", executed=1)
        import os, time  # noqa: E401

        dead = service.workers_dir(store) / "crashed.json"
        old = time.time() - 9999
        os.utime(dead, (old, old))
        workers = dashboard_payload(store, lease_ttl_s=60.0)["workers"]
        by_id = {w["worker"]: w for w in workers}
        assert by_id["fresh"]["live"] is True
        assert by_id["crashed"]["live"] is False


class TestHtmlAndFiles:
    def test_render_html_is_self_contained(self, drained_store):
        page = render_html(dashboard_payload(drained_store))
        assert page.startswith("<!doctype html>")
        assert "<style>" in page  # inline CSS, no external assets
        assert "http-equiv='refresh'" not in page
        assert "SP/LRU@0.3" in page
        assert "Workers" in page and "Cells" in page

    def test_render_html_meta_refresh(self, drained_store):
        page = render_html(dashboard_payload(drained_store), refresh_s=5)
        assert "<meta http-equiv='refresh' content='5'>" in page

    def test_write_dashboard_emits_json_and_html(self, drained_store, tmp_path):
        out = tmp_path / "out"
        json_path, html_path = write_dashboard(drained_store, out_dir=out)
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == DASHBOARD_SCHEMA_VERSION
        assert html_path.read_text().startswith("<!doctype html>")

    def test_write_dashboard_defaults_into_the_store(self, drained_store):
        json_path, html_path = write_dashboard(drained_store)
        assert json_path == drained_store.root / "dashboard.json"
        assert html_path == drained_store.root / "dashboard.html"


class TestServer:
    def test_serves_html_and_json(self, drained_store):
        server = DashboardServer(drained_store, host="127.0.0.1", port=0)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(f"http://{host}:{port}/") as resp:
                assert resp.status == 200
                assert "text/html" in resp.headers["Content-Type"]
                assert b"Sweep dashboard" in resp.read()
            url = f"http://{host}:{port}/dashboard.json"
            with urllib.request.urlopen(url) as resp:
                assert resp.status == 200
                payload = json.loads(resp.read())
                assert payload["schema"] == DASHBOARD_SCHEMA_VERSION
                assert payload["progress"]["done"] == 4
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestAtomicPublish:
    """Regression tests for the IO201 fix: both dashboard artifacts are
    published via tmp + os.replace, never a truncating in-place write."""

    def test_no_temp_files_survive_a_write(self, drained_store):
        write_dashboard(drained_store)
        names = sorted(p.name for p in drained_store.root.iterdir())
        assert "dashboard.json" in names and "dashboard.html" in names
        assert not any(n.endswith(".tmp") for n in names)

    def test_rewrite_goes_through_os_replace(self, drained_store, monkeypatch):
        import os as os_module

        replaced: list[str] = []
        real_replace = os_module.replace

        def spying_replace(src, dst):
            replaced.append(os_module.path.basename(str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os_module, "replace", spying_replace)
        write_dashboard(drained_store)
        assert replaced.count("dashboard.json") == 1
        assert replaced.count("dashboard.html") == 1
