"""Result-store persistence: atomicity, corruption handling, round trips."""

from __future__ import annotations

import json

import pytest

from repro.sweep.runner import run_cell
from repro.sweep.spec import CellSpec
from repro.sweep.store import (
    STATUS_ERROR,
    STATUS_OK,
    CellResult,
    ResultStore,
    atomic_write_text,
)


def _ok_result(fingerprint: str = "abc123") -> CellResult:
    cell = CellSpec(workload="SP", cluster="test", cache_fraction=0.4, partitions=8)
    return CellResult(
        fingerprint=fingerprint,
        spec=cell.to_dict(),
        status=STATUS_OK,
        metrics={"jct": 1.0},
        elapsed_s=0.5,
    )


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = CellSpec(workload="SP", cluster="test", cache_fraction=0.5,
                        partitions=8)
        result = run_cell(cell)
        assert result.ok
        store.put(result)
        loaded = store.get(result.fingerprint)
        assert loaded == result
        # The lossless metrics round trip must survive the disk hop too.
        assert loaded.run_metrics().jct == result.run_metrics().jct

    def test_missing_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("deadbeef") is None

    def test_corrupt_file_ignored(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        result = _ok_result()
        store.put(result)
        store.cell_path(result.fingerprint).write_text("{truncated")
        with caplog.at_level("WARNING"):
            assert store.get(result.fingerprint) is None
        assert "recomputed" in caplog.text

    def test_fingerprint_mismatch_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _ok_result(fingerprint="aaaa")
        store.put(result)
        # A file renamed (or copied) to the wrong key must not be served.
        store.cell_path("aaaa").rename(store.cell_path("bbbb"))
        assert store.get("bbbb") is None

    def test_put_is_atomic_no_temp_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_ok_result())
        leftovers = [p for p in store.cells_dir.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_payload_is_plain_json(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _ok_result()
        path = store.put(result)
        data = json.loads(path.read_text())
        assert data["fingerprint"] == result.fingerprint
        assert data["status"] == "ok"
        # `cached` is runtime-only and must not leak into the file.
        assert "cached" not in data

    def test_iteration_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        store.put(_ok_result("aaaa"))
        store.put(_ok_result("bbbb"))
        assert len(store) == 2
        assert {r.fingerprint for r in store} == {"aaaa", "bbbb"}

    def test_iteration_order_independent_of_write_order(self, tmp_path):
        """Resume must not depend on on-disk directory order (DET004).

        Two stores receive the same cells in opposite completion orders;
        iteration (what a resumed sweep replays) must be identical, and
        sorted, for both.
        """
        prints = ["cafe", "0a0a", "beef", "f00d", "1234"]
        forward = ResultStore(tmp_path / "fwd")
        backward = ResultStore(tmp_path / "bwd")
        for fp in prints:
            forward.put(_ok_result(fp))
        for fp in reversed(prints):
            backward.put(_ok_result(fp))
        assert forward.fingerprints() == backward.fingerprints() == sorted(prints)
        assert [r.fingerprint for r in forward] == \
            [r.fingerprint for r in backward] == sorted(prints)

    def test_profile_paths_are_isolated(self, tmp_path):
        store = ResultStore(tmp_path)
        a = store.profile_path("aaaa")
        b = store.profile_path("bbbb")
        assert a != b
        assert a.parent.is_dir() and b.parent.is_dir()


class TestCellResult:
    def test_error_result_has_no_metrics(self):
        result = CellResult(
            fingerprint="ffff", spec={}, status=STATUS_ERROR,
            error={"type": "ValueError", "message": "boom"},
        )
        assert not result.ok
        assert result.describe_error() == "ValueError: boom"
        with pytest.raises(ValueError, match="no metrics"):
            result.run_metrics()

    def test_json_round_trip(self):
        result = _ok_result()
        assert CellResult.from_json(result.to_json()) == result


class TestReset:
    def test_reset_profiles_purges_the_cell_directory(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.profile_path("aaaa")
        path.write_text("{}")
        assert store.reset_profiles("aaaa") is True
        assert not path.parent.exists()
        # Other cells' profiles are untouched.
        other = store.profile_path("bbbb")
        other.write_text("{}")
        store.reset_profiles("aaaa")
        assert other.exists()

    def test_reset_profiles_without_directory_is_noop(self, tmp_path):
        assert ResultStore(tmp_path).reset_profiles("nope") is False

    def test_reset_cell_forgets_result_and_profiles(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_ok_result("aaaa"))
        store.profile_path("aaaa").write_text("{}")
        store.reset_cell("aaaa")
        assert store.get("aaaa") is None
        assert not (store.profiles_dir / "aaaa").exists()
        store.reset_cell("aaaa")  # idempotent


class TestContentDigest:
    def test_equal_stores_digest_equal(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        for store in (a, b):
            store.put(_ok_result("aaaa"))
            store.put(_ok_result("bbbb"))
        assert a.content_digest() == b.content_digest()

    def test_digest_ignores_wall_clock_elapsed(self, tmp_path):
        """elapsed_s varies per machine; it must not split identity."""
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        fast, slow = _ok_result("aaaa"), _ok_result("aaaa")
        fast.elapsed_s, slow.elapsed_s = 0.01, 99.9
        a.put(fast)
        b.put(slow)
        assert a.content_digest() == b.content_digest()

    def test_digest_sees_metric_changes(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        a.put(_ok_result("aaaa"))
        changed = _ok_result("aaaa")
        changed.metrics = {"jct": 2.0}
        b.put(changed)
        assert a.content_digest() != b.content_digest()

    def test_digest_independent_of_write_order(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        a.put(_ok_result("aaaa"))
        a.put(_ok_result("bbbb"))
        b.put(_ok_result("bbbb"))
        b.put(_ok_result("aaaa"))
        assert a.content_digest() == b.content_digest()

    def test_empty_store_has_a_digest(self, tmp_path):
        assert len(ResultStore(tmp_path).content_digest()) == 64


class TestAtomicWriteText:
    """The shared tmp+os.replace publisher behind every final-path
    write in the store, manifest and dashboard (IO201)."""

    def test_writes_content_and_returns_the_path(self, tmp_path):
        target = tmp_path / "deep" / "out.json"
        result = atomic_write_text(target, '{"a": 1}')
        assert result == target
        assert target.read_text() == '{"a": 1}'

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old content")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failed_write_cleans_up_and_preserves_the_old_file(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "survivor")

        import os as os_module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os_module, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "doomed")
        monkeypatch.undo()
        assert target.read_text() == "survivor"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
