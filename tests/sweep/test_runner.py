"""Sweep runner: determinism, failure isolation, resume, caching."""

from __future__ import annotations

import pytest

from repro.sweep.runner import SweepError, run_cell, run_cells, scheduler_mismatches
from repro.sweep.schemes import SchemeSpec
from repro.sweep.spec import CellSpec, GridSpec
from repro.sweep.store import ResultStore


def _cells(fractions=(0.3, 0.6), schemes=("LRU", "MRD")) -> list[CellSpec]:
    return GridSpec(
        workloads=["SP"], schemes=list(schemes),
        cache_fractions=list(fractions), clusters=["test"], partitions=8,
    ).cells()


def _payloads(outcome):
    return [(r.fingerprint, r.status, r.metrics) for r in outcome.results]


class TestRunCells:
    def test_empty_grid(self):
        outcome = run_cells([])
        assert outcome.results == []
        assert outcome.computed == outcome.cached == outcome.errors == 0
        assert "0 cells" in outcome.stats_line()

    def test_single_cell(self):
        cells = _cells(fractions=(0.5,), schemes=("MRD",))
        outcome = run_cells(cells)
        assert outcome.computed == 1 and outcome.errors == 0
        metrics = outcome.metrics_for(cells[0])
        assert metrics.scheme == "MRD"
        assert metrics.jct > 0

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells(_cells(), jobs=0)

    def test_parallel_is_bit_identical_to_serial(self):
        cells = _cells()
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=3)
        assert _payloads(serial) == _payloads(parallel)

    def test_duplicate_cells_share_one_computation(self):
        cells = _cells(fractions=(0.5,), schemes=("LRU",))
        outcome = run_cells(cells * 3)
        assert len(outcome.results) == 3
        assert outcome.computed == 1
        assert len({id(r) for r in outcome.results}) == 1

    def test_results_arrive_in_cell_order_regardless_of_jobs(self):
        cells = _cells()
        outcome = run_cells(cells, jobs=2)
        assert [r.fingerprint for r in outcome.results] == [
            c.fingerprint() for c in cells
        ]


class TestFailureIsolation:
    def test_error_cell_does_not_kill_the_sweep(self):
        bad = CellSpec(workload="SP", cluster="test", scale=-1.0, partitions=8)
        good = _cells(fractions=(0.5,), schemes=("LRU",))[0]
        outcome = run_cells([bad, good])
        assert outcome.errors == 1
        failed = outcome.result_for(bad)
        assert not failed.ok
        assert failed.error["type"] == "ValueError"
        assert "Traceback" in failed.error["traceback"]
        assert outcome.result_for(good).ok

    def test_error_cell_isolated_across_processes(self):
        bad = CellSpec(workload="SP", cluster="test", scale=-1.0, partitions=8)
        good = _cells(fractions=(0.5,), schemes=("LRU",))[0]
        outcome = run_cells([bad, good], jobs=2)
        assert outcome.errors == 1
        assert outcome.result_for(good).ok

    def test_raise_on_error_names_the_cell(self):
        bad = CellSpec(workload="SP", cluster="test", scale=-1.0, partitions=8)
        outcome = run_cells([bad])
        with pytest.raises(SweepError, match="SP/LRU"):
            outcome.raise_on_error()
        run_cells(_cells(fractions=(0.5,))).raise_on_error()  # no raise

    def test_run_cell_maps_exception_to_result(self):
        result = run_cell(CellSpec(workload="SP", cluster="test", scale=-1.0))
        assert result.status == "error"
        assert "positive" in result.describe_error()


class TestResume:
    def test_interrupted_sweep_resumes(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        # Simulate an interrupt: only the first two cells completed.
        first = run_cells(cells[:2], store=store)
        assert first.computed == 2
        full = run_cells(cells, store=store)
        assert full.cached == 2
        assert full.computed == len(cells) - 2
        # Served-from-store results are flagged and payload-identical.
        assert _payloads(full)[:2] == _payloads(first)
        assert [r.cached for r in full.results] == [True, True, False, False]

    def test_completed_sweep_recomputes_nothing(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        first = run_cells(cells, store=store)
        again = run_cells(cells, store=store)
        assert again.computed == 0
        assert again.cached == len(cells)
        assert _payloads(again) == _payloads(first)

    def test_config_change_invalidates_exactly_that_cell(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        run_cells(cells, store=store)
        edited = list(cells)
        edited[0] = CellSpec(
            workload="SP", cluster="test", partitions=8,
            scheme="LRU", scheme_spec=SchemeSpec("LRU"),
            cache_fraction=0.45,  # <- only this cell changed
        )
        outcome = run_cells(edited, store=store)
        assert outcome.computed == 1
        assert outcome.cached == len(cells) - 1

    def test_no_resume_recomputes_everything(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        run_cells(cells, store=store)
        outcome = run_cells(cells, store=store, resume=False)
        assert outcome.computed == len(cells)
        assert outcome.cached == 0

    def test_stored_error_results_retry(self, tmp_path):
        bad = CellSpec(workload="SP", cluster="test", scale=-1.0, partitions=8)
        store = ResultStore(tmp_path)
        first = run_cells([bad], store=store)
        assert first.errors == 1
        again = run_cells([bad], store=store)
        assert again.computed == 1  # retried, not served from cache
        assert again.errors == 1

    def test_store_accepts_plain_path(self, tmp_path):
        cells = _cells(fractions=(0.5,), schemes=("LRU",))
        outcome = run_cells(cells, store=str(tmp_path))
        assert outcome.computed == 1
        assert run_cells(cells, store=str(tmp_path)).cached == 1

    def test_profile_store_cell_requires_result_store(self):
        cell = CellSpec(workload="SP", cluster="test", partitions=8,
                        profile_store=True)
        with pytest.raises(ValueError, match="profile store"):
            run_cells([cell])


class TestProgress:
    def test_progress_covers_every_cell_including_cached(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        run_cells(cells[:2], store=store)
        seen: list[tuple[int, int, bool]] = []
        run_cells(
            cells, store=store,
            progress=lambda done, total, r: seen.append((done, total, r.cached)),
        )
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == 4 for s in seen)
        assert [s[2] for s in seen] == [True, True, False, False]


class TestSchedulerEquivalence:
    def test_event_and_reference_cores_agree(self):
        grid = GridSpec(
            workloads=["SP"], schemes=["LRU", "MRD"], cache_fractions=[0.4],
            clusters=["test"], partitions=8,
            schedulers=["event", "reference"],
        )
        outcome = run_cells(grid.cells())
        assert outcome.errors == 0
        assert scheduler_mismatches(outcome) == []

    def test_mismatch_detected_when_payloads_differ(self):
        grid = GridSpec(
            workloads=["SP"], schemes=["LRU"], cache_fractions=[0.4],
            clusters=["test"], partitions=8,
            schedulers=["event", "reference"],
        )
        outcome = run_cells(grid.cells())
        # Forge a divergence to prove the check has teeth.
        outcome.results[1].metrics = dict(outcome.results[1].metrics, jct=999.0)
        assert len(scheduler_mismatches(outcome)) == 1


class TestProfilePurgeOnRecompute:
    """Recompute = reset: no profile state may leak across runs."""

    def _profile_cell(self) -> CellSpec:
        return CellSpec(workload="SP", cluster="test", cache_fraction=0.4,
                        partitions=8, profile_store=True)

    def test_no_resume_purges_stale_profile_directory(self, tmp_path):
        cell = self._profile_cell()
        store = ResultStore(tmp_path)
        run_cells([cell], store=store).raise_on_error()
        sentinel = store.profiles_dir / cell.fingerprint() / "stale-marker"
        sentinel.write_text("from an earlier run")
        outcome = run_cells([cell], store=store, resume=False)
        assert outcome.computed == 1
        assert not sentinel.exists()  # purged before the cell recomputed

    def test_stored_error_retry_purges_profile_directory(self, tmp_path):
        from repro.sweep.store import STATUS_ERROR, CellResult

        cell = self._profile_cell()
        store = ResultStore(tmp_path)
        fingerprint = cell.fingerprint()
        sentinel = store.profiles_dir / fingerprint / "stale-marker"
        sentinel.parent.mkdir(parents=True)
        sentinel.write_text("left behind by a crashed run")
        store.put(CellResult(
            fingerprint=fingerprint, spec=cell.to_dict(), status=STATUS_ERROR,
            error={"type": "RuntimeError", "message": "crash", "traceback": ""},
        ))
        outcome = run_cells([cell], store=store)
        assert outcome.computed == 1 and outcome.errors == 0
        assert not sentinel.exists()

    def test_cached_cells_keep_their_profiles(self, tmp_path):
        cell = self._profile_cell()
        store = ResultStore(tmp_path)
        run_cells([cell], store=store).raise_on_error()
        marker = store.profiles_dir / cell.fingerprint() / "kept"
        marker.write_text("cached cells must not be reset")
        outcome = run_cells([cell], store=store)  # served from the store
        assert outcome.cached == 1
        assert marker.exists()
