"""sweep_workload / fig-driver routing through the parallel runner."""

from __future__ import annotations

import pickle

from repro.core.policy import MrdScheme
from repro.experiments import fig_control_latency
from repro.experiments.harness import sweep_workload
from repro.simulator.config import CLUSTERS
from repro.simulator.reporting import metrics_to_dict
from repro.sweep.schemes import SchemeSpec
from repro.sweep.store import ResultStore

_SCHEMES = {"LRU": SchemeSpec("LRU"), "MRD": SchemeSpec("MRD")}
_KWARGS = dict(
    schemes=_SCHEMES, cluster=CLUSTERS["test"],
    cache_fractions=(0.3, 0.6), partitions=8,
)


def _runs(result):
    return [
        (r.scheme, r.cache_fraction, r.cache_mb_per_node,
         metrics_to_dict(r.metrics))
        for r in result.runs
    ]


class TestSweepWorkloadRouting:
    def test_parallel_matches_serial_bitwise(self, tmp_path):
        serial = sweep_workload("SP", **_KWARGS)
        parallel = sweep_workload("SP", jobs=2, store=tmp_path, **_KWARGS)
        assert _runs(parallel) == _runs(serial)

    def test_store_alone_routes_and_caches(self, tmp_path):
        first = sweep_workload("SP", store=tmp_path, **_KWARGS)
        assert len(ResultStore(tmp_path)) == len(first.runs)
        again = sweep_workload("SP", store=tmp_path, **_KWARGS)
        assert _runs(again) == _runs(first)

    def test_live_factories_fall_back_to_serial(self, tmp_path):
        # A lambda cannot cross a process boundary; the harness must
        # quietly run it in-process even when jobs/store are requested.
        schemes = {"custom": lambda: MrdScheme(prefetch=False)}
        result = sweep_workload(
            "SP", schemes=schemes, cluster=CLUSTERS["test"],
            cache_fractions=(0.5,), partitions=8, jobs=2, store=tmp_path,
        )
        assert [r.scheme for r in result.runs] == ["custom"]
        assert len(ResultStore(tmp_path)) == 0  # nothing was farmed out

    def test_prebuilt_dag_falls_back_to_serial(self, tmp_path):
        from repro.experiments.harness import build_workload_dag

        dag = build_workload_dag("SP", partitions=8)
        result = sweep_workload(
            "SP", dag=dag, jobs=2, store=tmp_path, **_KWARGS
        )
        assert result.dag is dag
        assert len(ResultStore(tmp_path)) == 0

    def test_scheme_labels_survive_the_runner(self, tmp_path):
        schemes = {"renamed": SchemeSpec("MRD")}
        result = sweep_workload(
            "SP", schemes=schemes, cluster=CLUSTERS["test"],
            cache_fractions=(0.5,), partitions=8, jobs=2, store=tmp_path,
        )
        run = result.runs[0]
        assert run.scheme == "renamed"
        assert run.metrics.scheme == "renamed"


class TestControlLatencyDriver:
    def test_runner_path_matches_serial(self, tmp_path):
        kwargs = dict(workloads=("KM",), latencies=(0.0, 2.0))
        serial = fig_control_latency.run(**kwargs)
        parallel = fig_control_latency.run(jobs=2, store=tmp_path, **kwargs)
        assert parallel == serial
        # LRU exchanges no distance state: flat at 1.0 by construction.
        assert all(r.norm_jct == 1.0 for r in serial if r.scheme == "LRU")


class TestPicklability:
    def test_cells_and_results_pickle(self):
        # The pool ships cells out and results back; both must pickle.
        from repro.sweep.runner import run_cell
        from repro.sweep.spec import CellSpec

        cell = CellSpec(workload="SP", cluster="test", cache_fraction=0.4,
                        partitions=8, scheme_spec=SchemeSpec("MRD"))
        assert pickle.loads(pickle.dumps(cell)) == cell
        result = run_cell(cell)
        assert pickle.loads(pickle.dumps(result)) == result
