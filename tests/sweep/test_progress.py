"""ETA regression tests: the progress line never prints inf/nan/negative.

The bug being pinned: cells finishing in under one clock tick made the
rate-based ETA divide by ~zero and print ``inf`` (or ``~0s left`` for an
hours-long grid).  A fake clock reproduces the degenerate timings
deterministically.
"""

from __future__ import annotations

import io
import math

from repro.sweep.progress import MIN_MEASURABLE_S, SweepProgress, format_eta
from repro.sweep.spec import CellSpec
from repro.sweep.store import STATUS_OK, CellResult


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _result(cached: bool = False) -> CellResult:
    cell = CellSpec(workload="SP", cluster="test", cache_fraction=0.4)
    result = CellResult(
        fingerprint=cell.fingerprint(),
        spec=cell.to_dict(),
        status=STATUS_OK,
        metrics={},
    )
    result.cached = cached
    return result


class TestFormatEta:
    def test_formats_seconds(self):
        assert format_eta(12.4) == "~12s left"

    def test_none_and_nonfinite_are_unknown(self):
        assert format_eta(None) == "~?s left"
        assert format_eta(math.inf) == "~?s left"
        assert format_eta(math.nan) == "~?s left"

    def test_negative_clamps_to_zero(self):
        assert format_eta(-3.0) == "~0s left"


class TestSweepProgressEta:
    def test_zero_elapsed_first_cell_shows_unknown_not_inf(self):
        """The regression: a cell completing in <1 tick must not emit inf."""
        clock = FakeClock()
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, clock=clock)
        progress(1, 100, _result())  # clock has not advanced at all
        line = stream.getvalue()
        assert "~?s left" in line
        assert "inf" not in line and "nan" not in line

    def test_sub_millisecond_elapsed_still_unknown(self):
        clock = FakeClock()
        progress = SweepProgress(stream=io.StringIO(), clock=clock)
        clock.now += MIN_MEASURABLE_S / 10
        progress(1, 100, _result())
        assert progress.eta_s(1, 100) is None

    def test_cached_cells_do_not_feed_the_rate(self):
        """A burst of instant cached cells says nothing about compute."""
        clock = FakeClock()
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, clock=clock)
        for done in range(1, 51):
            progress(done, 100, _result(cached=True))
        clock.now += 10.0  # time passes, still zero *computed* cells
        assert progress.eta_s(50, 100) is None
        assert "inf" not in stream.getvalue()

    def test_rate_uses_computed_cells_only(self):
        clock = FakeClock()
        progress = SweepProgress(stream=io.StringIO(), clock=clock)
        progress(1, 10, _result(cached=True))  # instant, excluded
        clock.now += 8.0
        progress(2, 10, _result())
        # One computed cell over 8s elapsed → 8s/cell × 8 remaining = 64s.
        eta = progress.eta_s(2, 10)
        assert eta == 64.0

    def test_eta_is_zero_when_done(self):
        progress = SweepProgress(stream=io.StringIO(), clock=FakeClock())
        assert progress.eta_s(10, 10) == 0.0

    def test_eta_never_negative_or_nonfinite(self):
        clock = FakeClock()
        progress = SweepProgress(stream=io.StringIO(), clock=clock)
        for done in range(1, 6):
            clock.now += 0.5
            progress(done, 5, _result())
            eta = progress.eta_s(done, 5)
            assert eta is not None
            assert math.isfinite(eta) and eta >= 0

    def test_progress_line_shape(self):
        clock = FakeClock()
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, clock=clock)
        clock.now += 2.0
        progress(1, 4, _result())
        line = stream.getvalue()
        assert line.startswith("[1/4] SP/LRU@0.4: ok ")
        assert "(2.0s elapsed, ~6s left)" in line

    def test_error_cells_are_labelled(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream, clock=FakeClock())
        bad = _result()
        bad.status = "error"
        progress(1, 2, bad)
        assert "ERROR" in stream.getvalue()
