"""Elastic sweep axes: placement, churn rate/seed, rebalance.

Fingerprint hygiene is the load-bearing property: churn-only fields
must normalize to inert values on static cells (so a seed or rebalance
choice that cannot affect the run never splits a result-store key), and
a churn cell's derived seed must be a deterministic function of the
cell alone.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.sweep.runner import run_cells
from repro.sweep.spec import CellSpec, GridSpec

BASE = CellSpec(workload="KM", scheme="MRD", cache_fraction=0.4, partitions=8)


# ----------------------------------------------------------------------
# CellSpec validation and fingerprints
# ----------------------------------------------------------------------
def test_cell_validates_elastic_fields():
    with pytest.raises(ValueError, match="placement must be one of"):
        replace(BASE, placement="consistent")
    with pytest.raises(ValueError, match="churn_rate must be in"):
        replace(BASE, churn_rate=1.5)
    with pytest.raises(ValueError, match="rebalance must be one of"):
        replace(BASE, rebalance="replicate")


def test_inert_churn_fields_do_not_split_static_fingerprints():
    """On a static cell (churn_rate == 0) the churn seed and rebalance
    policy cannot affect the run, so they must not change the content
    address either — stored results stay shared."""
    base = BASE.fingerprint()
    assert replace(BASE, churn_seed=123).fingerprint() == base
    assert replace(BASE, rebalance="migrate").fingerprint() == base
    # Placement is NOT inert (it changes static routing) and must split.
    assert replace(BASE, placement="rendezvous").fingerprint() != base


def test_live_churn_fields_do_split_fingerprints():
    churned = replace(BASE, churn_rate=0.4, churn_seed=0)
    assert churned.fingerprint() != BASE.fingerprint()
    assert replace(churned, churn_seed=1).fingerprint() != churned.fingerprint()
    assert (replace(churned, rebalance="migrate").fingerprint()
            != churned.fingerprint())


def test_cell_round_trips_elastic_fields():
    cell = replace(BASE, placement="rendezvous", churn_rate=0.4,
                   churn_seed=7, rebalance="migrate")
    back = CellSpec.from_dict(cell.to_dict())
    assert back == cell
    assert back.fingerprint() == cell.fingerprint()


def test_derived_churn_seed():
    explicit = replace(BASE, churn_rate=0.4, churn_seed=99)
    assert explicit.derived_churn_seed() == 99
    derived = replace(BASE, churn_rate=0.4)
    assert derived.derived_churn_seed() == derived.derived_churn_seed()
    # Distinct fingerprint slices: churn and control streams never share
    # a seed on the same cell.
    assert derived.derived_churn_seed() != derived.derived_control_seed()


def test_label_shows_elastic_axes():
    assert "rendezvous" in replace(BASE, placement="rendezvous").label()
    churned = replace(BASE, churn_rate=0.4, rebalance="migrate")
    assert "churn=0.4/migrate" in churned.label()
    assert "churn" not in BASE.label()


# ----------------------------------------------------------------------
# GridSpec expansion
# ----------------------------------------------------------------------
def test_grid_expands_elastic_axes():
    grid = GridSpec(
        workloads=["KM"],
        schemes=["MRD"],
        placements=["stride", "rendezvous"],
        churn_rates=[0.0, 0.4],
        rebalances=["drop", "migrate"],
    )
    cells = grid.cells()
    assert len(cells) == 2 * 2 * 2
    assert {c.placement for c in cells} == {"stride", "rendezvous"}
    assert {c.churn_rate for c in cells} == {0.0, 0.4}
    assert {c.rebalance for c in cells} == {"drop", "migrate"}


def test_grid_from_dict_coerces_scalar_axes():
    grid = GridSpec.from_dict({
        "workloads": "KM",
        "placements": "rendezvous",
        "churn_rates": 0.4,
        "rebalances": "migrate",
        "churn_seed": 3,
    })
    cells = grid.cells()
    assert all(c.placement == "rendezvous" for c in cells)
    assert all(c.churn_rate == 0.4 for c in cells)
    assert all(c.rebalance == "migrate" for c in cells)
    assert all(c.churn_seed == 3 for c in cells)


# ----------------------------------------------------------------------
# runner execution
# ----------------------------------------------------------------------
def test_runner_executes_churn_cell():
    """A churned cell actually churns (KM at rate 0.4, seed 0 has
    membership events — the fig_elastic configuration) and records the
    elastic counters in its stored metrics."""
    cell = replace(BASE, placement="rendezvous", churn_rate=0.4,
                   churn_seed=0, rebalance="migrate")
    outcome = run_cells([cell, BASE])
    outcome.raise_on_error()
    churned = outcome.metrics_for(cell)
    static = outcome.metrics_for(BASE)
    assert churned.nodes_joined + churned.nodes_decommissioned > 0
    assert static.nodes_joined == static.nodes_decommissioned == 0
    assert churned.jct != static.jct


def test_runner_churn_cell_deterministic_across_invocations():
    cell = replace(BASE, churn_rate=0.4, churn_seed=0)
    a = run_cells([cell]).results[0]
    b = run_cells([cell]).results[0]
    assert a.ok and b.ok
    assert a.metrics == b.metrics
