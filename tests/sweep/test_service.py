"""Distributed sweep service: leases, worker loop, manifest, reclaim.

The headline guardrail lives here: N concurrent workers over one shared
store drain a grid with zero duplicated cell executions and produce a
ResultStore whose content digest is identical to a serial ``--jobs 1``
run.  The lease lifecycle (atomic claim, heartbeat refresh, stale-lease
expiry and single-winner reclaim) is exercised piecewise around it.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

import repro.sweep.service as service
from repro.sweep.runner import run_cell, run_cells
from repro.sweep.service import (
    LeaseManager,
    load_manifest,
    manifest_path,
    publish_manifest,
    read_workers,
    run_worker,
    write_worker_heartbeat,
)
from repro.sweep.spec import CellSpec, GridSpec
from repro.sweep.store import STATUS_ERROR, CellResult, ResultStore


def _cells(fractions=(0.3, 0.6), schemes=("LRU", "MRD")) -> list[CellSpec]:
    return GridSpec(
        workloads=["SP"], schemes=list(schemes),
        cache_fractions=list(fractions), clusters=["test"], partitions=8,
    ).cells()


def _backdate(path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
class TestLeaseManager:
    def test_acquire_is_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseManager(store, "a")
        b = LeaseManager(store, "b")
        assert a.acquire("cell1")
        assert not b.acquire("cell1")
        info = b.inspect("cell1")
        assert info is not None and info.worker == "a"

    def test_release_frees_the_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseManager(store, "a")
        assert a.acquire("cell1")
        a.release("cell1")
        assert LeaseManager(store, "b").acquire("cell1")

    def test_release_is_idempotent(self, tmp_path):
        leases = LeaseManager(ResultStore(tmp_path), "a")
        leases.release("never-held")  # no raise

    def test_stale_lease_is_reclaimed(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseManager(store, "a", ttl_s=5.0)
        assert a.acquire("cell1")
        _backdate(a.lease_path("cell1"), seconds=60.0)
        b = LeaseManager(store, "b", ttl_s=5.0)
        assert b.acquire("cell1")
        info = b.inspect("cell1")
        assert info is not None and info.worker == "b"

    def test_fresh_lease_is_not_reclaimed(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseManager(store, "a", ttl_s=3600.0)
        assert a.acquire("cell1")
        assert not LeaseManager(store, "b", ttl_s=3600.0).acquire("cell1")

    def test_heartbeat_refresh_keeps_a_lease_live(self, tmp_path):
        store = ResultStore(tmp_path)
        a = LeaseManager(store, "a", ttl_s=5.0)
        assert a.acquire("cell1")
        _backdate(a.lease_path("cell1"), seconds=60.0)
        assert a.refresh("cell1")  # heartbeat = mtime bump
        assert a.inspect("cell1").age_s < 5.0
        assert not LeaseManager(store, "b", ttl_s=5.0).acquire("cell1")

    def test_refresh_reports_vanished_lease(self, tmp_path):
        leases = LeaseManager(ResultStore(tmp_path), "a")
        assert not leases.refresh("never-held")

    def test_single_winner_when_many_reclaim_concurrently(self, tmp_path):
        store = ResultStore(tmp_path)
        first = LeaseManager(store, "crashed", ttl_s=1.0)
        assert first.acquire("cell1")
        _backdate(first.lease_path("cell1"), seconds=60.0)
        wins = []
        barrier = threading.Barrier(8)

        def contend(worker: str) -> None:
            leases = LeaseManager(store, worker, ttl_s=1.0)
            barrier.wait()
            if leases.acquire("cell1"):
                wins.append(worker)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_live_leases_sorted_and_skips_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        leases = LeaseManager(store, "a")
        assert leases.acquire("bbb")
        assert leases.acquire("aaa")
        (leases.leases_dir / ".reclaim-zzz-w.tmp").write_text("{}")
        assert [info.fingerprint for info in leases.live_leases()] == ["aaa", "bbb"]

    def test_bad_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseManager(ResultStore(tmp_path), "a", ttl_s=0.0)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_publish_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = _cells()
        publish_manifest(store, cells)
        loaded = load_manifest(store)
        assert sorted(c.fingerprint() for c in cells) == [
            c.fingerprint() for c in loaded
        ]
        assert {c.fingerprint() for c in loaded} == {
            c.fingerprint() for c in cells
        }

    def test_publish_merges_rather_than_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        first, second = _cells(fractions=(0.3,)), _cells(fractions=(0.6,))
        publish_manifest(store, first)
        publish_manifest(store, second)
        fingerprints = {c.fingerprint() for c in load_manifest(store)}
        assert fingerprints == {
            c.fingerprint() for c in first + second
        }

    def test_republish_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = _cells()
        publish_manifest(store, cells)
        before = manifest_path(store).read_bytes()
        publish_manifest(store, cells)
        assert manifest_path(store).read_bytes() == before

    def test_missing_or_corrupt_manifest_is_empty(self, tmp_path):
        store = ResultStore(tmp_path)
        assert load_manifest(store) == []
        manifest_path(store).write_text("{nope")
        assert load_manifest(store) == []
        manifest_path(store).write_text(json.dumps({"version": 999, "cells": []}))
        assert load_manifest(store) == []


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
class TestRunWorker:
    def test_single_worker_drains_the_grid(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        summary = run_worker(store, cells, worker_id="w1", poll_s=0.01)
        assert summary.drained
        assert summary.executed == len(cells)
        assert summary.errors == 0
        assert len(store) == len(cells)

    def test_worker_store_is_bit_identical_to_serial(self, tmp_path):
        cells = _cells()
        serial_store = ResultStore(tmp_path / "serial")
        run_cells(cells, jobs=1, store=serial_store).raise_on_error()
        worker_store = ResultStore(tmp_path / "worker")
        run_worker(worker_store, cells, worker_id="w1", poll_s=0.01)
        assert worker_store.content_digest() == serial_store.content_digest()

    def test_worker_without_grid_fails_loudly(self, tmp_path):
        with pytest.raises(ValueError, match="no grid"):
            run_worker(ResultStore(tmp_path), None)

    def test_worker_reads_cells_from_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        publish_manifest(store, _cells(fractions=(0.4,), schemes=("LRU",)))
        summary = run_worker(store, None, worker_id="w1", poll_s=0.01)
        assert summary.drained and summary.executed == 1

    def test_two_concurrent_workers_no_duplicate_execution(
        self, tmp_path, monkeypatch
    ):
        """The distributed guardrail: concurrency adds no recomputation."""
        cells = _cells()
        serial_store = ResultStore(tmp_path / "serial")
        run_cells(cells, jobs=1, store=serial_store).raise_on_error()

        executed: list[str] = []
        lock = threading.Lock()

        def counting_run_cell(cell, profile_path=None):
            with lock:
                executed.append(cell.fingerprint())
            return run_cell(cell, profile_path)

        monkeypatch.setattr(service, "run_cell", counting_run_cell)
        store = ResultStore(tmp_path / "shared")
        publish_manifest(store, cells)
        summaries: dict[str, object] = {}

        def work(worker_id: str) -> None:
            summaries[worker_id] = run_worker(
                store, None, worker_id=worker_id, poll_s=0.01
            )

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Zero duplicated executions, full coverage, identical bytes.
        assert sorted(executed) == sorted(c.fingerprint() for c in cells)
        assert all(s.drained for s in summaries.values())
        assert store.content_digest() == serial_store.content_digest()

    def test_crashed_worker_cells_are_reclaimed_and_completed(self, tmp_path):
        """A stale lease (dead heartbeat) must not strand its cell."""
        cells = _cells(fractions=(0.4,), schemes=("LRU",))
        store = ResultStore(tmp_path)
        publish_manifest(store, cells)
        # Simulate a crash: a lease exists, its heartbeat long dead, and
        # no result was ever committed.
        crashed = LeaseManager(store, "crashed", ttl_s=1.0)
        fingerprint = cells[0].fingerprint()
        assert crashed.acquire(fingerprint)
        _backdate(crashed.lease_path(fingerprint), seconds=60.0)

        summary = run_worker(
            store, None, worker_id="rescuer", lease_ttl_s=1.0, poll_s=0.01
        )
        assert summary.drained
        assert summary.executed == 1
        assert summary.reclaimed == 1
        result = store.get(fingerprint)
        assert result is not None and result.ok

    def test_live_lease_blocks_and_times_out(self, tmp_path):
        cells = _cells(fractions=(0.4,), schemes=("LRU",))
        store = ResultStore(tmp_path)
        publish_manifest(store, cells)
        holder = LeaseManager(store, "busy-elsewhere", ttl_s=3600.0)
        assert holder.acquire(cells[0].fingerprint())
        with pytest.raises(TimeoutError, match="leased elsewhere"):
            run_worker(
                store, None, worker_id="w1",
                lease_ttl_s=3600.0, poll_s=0.01, timeout_s=0.05,
            )

    def test_settled_cells_are_not_recomputed(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        run_cells(cells, jobs=1, store=store).raise_on_error()
        summary = run_worker(store, cells, worker_id="w1", poll_s=0.01)
        assert summary.executed == 0
        assert summary.settled_elsewhere == len(cells)

    def test_preexisting_error_results_retry_once(self, tmp_path):
        cells = _cells(fractions=(0.4,), schemes=("LRU",))
        store = ResultStore(tmp_path)
        fingerprint = cells[0].fingerprint()
        store.put(CellResult(
            fingerprint=fingerprint,
            spec=cells[0].to_dict(),
            status=STATUS_ERROR,
            error={"type": "RuntimeError", "message": "killed", "traceback": ""},
        ))
        summary = run_worker(store, cells, worker_id="w1", poll_s=0.01)
        assert summary.executed == 1  # the error retried...
        result = store.get(fingerprint)
        assert result is not None and result.ok  # ...and settled cleanly

    def test_error_cell_settles_without_pingpong(self, tmp_path):
        bad = CellSpec(workload="SP", cluster="test", scale=-1.0, partitions=8)
        store = ResultStore(tmp_path)
        summary = run_worker(store, [bad], worker_id="w1", poll_s=0.01)
        assert summary.drained
        assert summary.executed == 1 and summary.errors == 1
        # A second worker session sees the error as pre-existing and
        # retries exactly once more — deterministic failure, same result.
        again = run_worker(store, [bad], worker_id="w2", poll_s=0.01)
        assert again.drained and again.executed == 1 and again.errors == 1

    def test_max_cells_stops_early(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        summary = run_worker(
            store, cells, worker_id="w1", max_cells=1, poll_s=0.01
        )
        assert summary.executed == 1
        assert not summary.drained

    def test_recompute_purges_stale_profile_directory(self, tmp_path):
        """Reclaimed/retried cells must start from a cold profile."""
        cell = CellSpec(
            workload="SP", cluster="test", cache_fraction=0.4,
            partitions=8, profile_store=True,
        )
        store = ResultStore(tmp_path)
        fingerprint = cell.fingerprint()
        sentinel = store.profiles_dir / fingerprint / "stale-marker"
        sentinel.parent.mkdir(parents=True)
        sentinel.write_text("left behind by a crashed run")
        store.put(CellResult(
            fingerprint=fingerprint,
            spec=cell.to_dict(),
            status=STATUS_ERROR,
            error={"type": "RuntimeError", "message": "crash", "traceback": ""},
        ))
        run_worker(store, [cell], worker_id="w1", poll_s=0.01)
        assert not sentinel.exists()
        assert store.get(fingerprint).ok


# ----------------------------------------------------------------------
# worker registry
# ----------------------------------------------------------------------
class TestWorkerRegistry:
    def test_heartbeat_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        write_worker_heartbeat(store, "w1", executed=3, errors=1, current="abc")
        write_worker_heartbeat(store, "w0")
        entries = read_workers(store)
        assert [e["worker"] for e in entries] == ["w0", "w1"]
        assert entries[1]["executed"] == 3 and entries[1]["current"] == "abc"
        assert all(e["age_s"] >= 0 for e in entries)

    def test_worker_loop_registers_itself(self, tmp_path):
        store = ResultStore(tmp_path)
        run_worker(
            store, _cells(fractions=(0.4,), schemes=("LRU",)),
            worker_id="w1", poll_s=0.01,
        )
        entries = read_workers(store)
        assert len(entries) == 1
        assert entries[0]["worker"] == "w1"
        assert entries[0]["executed"] == 1

    def test_corrupt_registry_entries_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        write_worker_heartbeat(store, "w1")
        (service.workers_dir(store) / "bad.json").write_text("{nope")
        assert [e["worker"] for e in read_workers(store)] == ["w1"]


# ----------------------------------------------------------------------
# the coordinator half (run_cells external=True)
# ----------------------------------------------------------------------
class TestExternalCoordinator:
    def test_external_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            run_cells(_cells(), external=True)

    def test_external_rejects_no_resume(self, tmp_path):
        with pytest.raises(ValueError, match="resume"):
            run_cells(_cells(), store=tmp_path, external=True, resume=False)

    def test_external_times_out_without_workers(self, tmp_path):
        with pytest.raises(TimeoutError, match="external workers"):
            run_cells(
                _cells(), store=tmp_path, external=True,
                poll_s=0.01, timeout_s=0.05,
            )

    def test_external_coordinator_with_worker_matches_serial(self, tmp_path):
        cells = _cells()
        serial_store = ResultStore(tmp_path / "serial")
        serial = run_cells(cells, jobs=1, store=serial_store)

        store = ResultStore(tmp_path / "shared")
        outcome_box: dict[str, object] = {}

        def coordinate() -> None:
            outcome_box["outcome"] = run_cells(
                cells, store=store, external=True, poll_s=0.01, timeout_s=60.0,
            )

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        # The coordinator publishes the manifest; the worker reads it.
        deadline = time.monotonic() + 30.0
        while not load_manifest(store) and time.monotonic() < deadline:
            time.sleep(0.01)
        run_worker(store, None, worker_id="w1", poll_s=0.01)
        coordinator.join(timeout=30.0)
        assert not coordinator.is_alive()

        outcome = outcome_box["outcome"]
        assert [r.metrics for r in outcome.results] == [
            r.metrics for r in serial.results
        ]
        assert store.content_digest() == serial_store.content_digest()

    def test_external_serves_already_settled_cells_as_cached(self, tmp_path):
        cells = _cells()
        store = ResultStore(tmp_path)
        run_cells(cells, jobs=1, store=store).raise_on_error()
        outcome = run_cells(
            cells, store=store, external=True, poll_s=0.01, timeout_s=5.0,
        )
        assert outcome.cached == len(cells)


class TestPublishGuard:
    """Regression tests for the IO203 fix: publish_manifest's
    read-merge-write runs under an os.mkdir guard, so concurrent
    publishers cannot drop each other's cells."""

    def test_concurrent_publishers_lose_no_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        grids = [
            _cells(fractions=(round(0.1 * (i + 1), 2),), schemes=("LRU",))
            for i in range(6)
        ]
        errors: list[BaseException] = []

        def publish(cells):
            try:
                publish_manifest(store, cells)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=publish, args=(grid,)) for grid in grids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        published = {cell.fingerprint() for cell in load_manifest(store)}
        expected = {cell.fingerprint() for grid in grids for cell in grid}
        assert published == expected  # every merge survived

    def test_guard_is_released_after_publish(self, tmp_path):
        store = ResultStore(tmp_path)
        publish_manifest(store, _cells())
        assert not (store.root / ".grid.lock").exists()

    def test_stale_guard_from_a_crashed_publisher_is_retired(self, tmp_path):
        store = ResultStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        guard = store.root / ".grid.lock"
        guard.mkdir()
        _backdate(guard, service.DEFAULT_LEASE_TTL_S + 10)
        publish_manifest(store, _cells())  # must not deadlock
        assert len(load_manifest(store)) == 4
        assert not guard.exists()

    def test_fresh_guard_blocks_until_released(self, tmp_path):
        store = ResultStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        guard = store.root / ".grid.lock"
        guard.mkdir()
        done = threading.Event()

        def publish():
            publish_manifest(store, _cells())
            done.set()

        thread = threading.Thread(target=publish)
        thread.start()
        try:
            assert not done.wait(0.3)  # held guard really blocks
            os.rmdir(guard)
            assert done.wait(5.0)
        finally:
            thread.join(5.0)
        assert len(load_manifest(store)) == 4
