"""Cell fingerprints, grid expansion, and spec-file loading."""

from __future__ import annotations

import json

import pytest

from repro.sweep.schemes import SCHEME_SPECS, SchemeSpec, resolve_scheme
from repro.sweep.spec import CellSpec, GridSpec, load_grid, tomllib, validate_cells


class TestSchemeSpec:
    def test_name_mirrors_mrd_variants(self):
        assert SchemeSpec("MRD").name == "MRD"
        assert SchemeSpec("MRD", prefetch=False).name == "MRD-evict"
        assert SchemeSpec("MRD", evict=False).name == "MRD-prefetch"
        assert SchemeSpec("MRD", metric="job").name == "MRD-jobdist"
        assert SchemeSpec("MRD", mode="adhoc").name == "MRD-adhoc"
        assert SchemeSpec("LRU").name == "LRU"

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme base"):
            SchemeSpec("ARC")

    def test_mrd_needs_evict_or_prefetch(self):
        with pytest.raises(ValueError, match="evict/prefetch"):
            SchemeSpec("MRD", evict=False, prefetch=False)

    def test_callable_builds_fresh_instances(self):
        spec = SchemeSpec("MRD")
        a, b = spec(), spec()
        assert a is not b
        assert a.name == "MRD"

    def test_non_mrd_knobs_normalized_away(self):
        # LRU ignores MRD-only knobs, so they must not affect identity.
        assert SchemeSpec("LRU", mode="adhoc").to_dict() == SchemeSpec("LRU").to_dict()

    def test_round_trip(self):
        for spec in SCHEME_SPECS.values():
            assert SchemeSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scheme keys"):
            SchemeSpec.from_dict({"base": "LRU", "flavor": "mint"})

    def test_resolve_by_name_and_error(self):
        assert resolve_scheme("MRD-evict") == SchemeSpec("MRD", prefetch=False)
        with pytest.raises(ValueError, match="unknown scheme"):
            resolve_scheme("MAGIC")


class TestFingerprint:
    def test_stable_across_instances(self):
        a = CellSpec(workload="SP", cache_fraction=0.4)
        b = CellSpec(workload="SP", cache_fraction=0.4)
        assert a.fingerprint() == b.fingerprint()

    def test_every_field_change_invalidates(self):
        base = CellSpec(workload="SP", cache_fraction=0.4)
        variants = [
            CellSpec(workload="KM", cache_fraction=0.4),
            CellSpec(workload="SP", cache_fraction=0.5),
            CellSpec(workload="SP", cache_mb=32.0),
            CellSpec(workload="SP", cache_fraction=0.4, scale=2.0),
            CellSpec(workload="SP", cache_fraction=0.4, iterations=3),
            CellSpec(workload="SP", cache_fraction=0.4, partitions=8),
            CellSpec(workload="SP", cache_fraction=0.4, seed=1),
            CellSpec(workload="SP", cache_fraction=0.4, scheduler="reference"),
            CellSpec(workload="SP", cache_fraction=0.4, cluster="test"),
            CellSpec(workload="SP", cache_fraction=0.4,
                     scheme_spec=SchemeSpec("MRD")),
            CellSpec(workload="SP", cache_fraction=0.4, control_plane="rpc",
                     control_latency=1.0),
            CellSpec(workload="SP", cache_fraction=0.4, profile_store=True),
            CellSpec(workload="SP", cache_fraction=0.4,
                     cluster_overrides=(("num_nodes", 2),)),
        ]
        prints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_label_differs_from_identity(self):
        # The display label is part of the identity on purpose: the same
        # scheme under two labels is two distinct result rows.
        a = CellSpec(workload="SP", scheme="A", scheme_spec=SchemeSpec("LRU"))
        b = CellSpec(workload="SP", scheme="B", scheme_spec=SchemeSpec("LRU"))
        assert a.fingerprint() != b.fingerprint()

    def test_instant_plane_zeroes_control_fields(self):
        # Control knobs are meaningless on the instant plane and must
        # not split fingerprints.
        a = CellSpec(workload="SP", control_jitter=0.5, control_seed=7)
        b = CellSpec(workload="SP")
        assert a.fingerprint() == b.fingerprint()

    def test_round_trip_preserves_fingerprint(self):
        cell = CellSpec(
            workload="KM", scheme_spec=SchemeSpec("MRD", metric="job"),
            cluster="test", cache_fraction=0.3, iterations=4,
            control_plane="rpc", control_latency=2.0,
        )
        again = CellSpec.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert again.fingerprint() == cell.fingerprint()

    def test_derived_control_seed_deterministic(self):
        cell = CellSpec(workload="SP", control_plane="rpc", control_latency=1.0)
        assert cell.derived_control_seed() == cell.derived_control_seed()
        pinned = CellSpec(workload="SP", control_plane="rpc",
                          control_latency=1.0, control_seed=42)
        assert pinned.derived_control_seed() == 42


class TestCellValidation:
    def test_needs_workload(self):
        with pytest.raises(ValueError, match="workload"):
            CellSpec(workload="")

    def test_needs_cache_size(self):
        with pytest.raises(ValueError, match="cache_fraction or cache_mb"):
            CellSpec(workload="SP", cache_fraction=None, cache_mb=None)

    def test_bad_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            CellSpec(workload="SP", scheduler="fifo")

    def test_bad_cluster_override(self):
        with pytest.raises(ValueError, match="unknown cluster override"):
            CellSpec(workload="SP", cluster_overrides=(("warp_factor", 9),))

    def test_validate_cells_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown workload"):
            validate_cells([CellSpec(workload="NOPE")])
        with pytest.raises(ValueError, match="unknown cluster"):
            validate_cells([CellSpec(workload="SP", cluster="moon")])
        validate_cells([CellSpec(workload="SP", cluster="test")])  # no raise


class TestGridSpec:
    def test_empty_workloads_empty_grid(self):
        assert GridSpec().cells() == []

    def test_expansion_order_and_count(self):
        grid = GridSpec(
            workloads=["SP", "KM"], schemes=["LRU", "MRD"],
            cache_fractions=[0.3, 0.6],
        )
        cells = grid.cells()
        assert len(cells) == 8
        # Workload-major, then fraction, then scheme — deterministic.
        assert [c.workload for c in cells[:4]] == ["SP"] * 4
        assert [(c.cache_fraction, c.scheme) for c in cells[:4]] == [
            (0.3, "LRU"), (0.3, "MRD"), (0.6, "LRU"), (0.6, "MRD"),
        ]

    def test_expansion_is_deterministic(self):
        grid = GridSpec(workloads=["SP"], schemes=["LRU", "MRD"],
                        seeds=[0, 1], schedulers=["event", "reference"])
        prints = [c.fingerprint() for c in grid.cells()]
        assert prints == [c.fingerprint() for c in grid.cells()]
        assert len(set(prints)) == len(prints)

    def test_custom_labels(self):
        grid = GridSpec(
            workloads=["SP"],
            schemes=[("fancy", SchemeSpec("MRD")),
                     {"name": "plain", "base": "LRU"}],
        )
        assert [c.scheme for c in grid.cells()] == ["fancy", "plain"]

    def test_from_dict_strict_keys(self):
        with pytest.raises(ValueError, match="unknown grid spec key"):
            GridSpec.from_dict({"workloads": ["SP"], "warp": 9})

    def test_from_dict_scalar_coercion_and_alias(self):
        grid = GridSpec.from_dict(
            {"workloads": "SP", "fractions": 0.4, "schemes": "MRD"}
        )
        assert grid.workloads == ["SP"]
        assert grid.cache_fractions == [0.4]

    def test_from_dict_validates_schemes_and_schedulers(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            GridSpec.from_dict({"workloads": ["SP"], "schemes": ["MAGIC"]})
        with pytest.raises(ValueError, match="scheduler"):
            GridSpec.from_dict({"workloads": ["SP"], "schedulers": ["fifo"]})


class TestSpecFiles:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "workloads": ["SP"], "schemes": ["LRU", "MRD"], "fractions": [0.4],
        }))
        grid = load_grid(path)
        assert len(grid.cells()) == 2

    def test_json_spec_must_be_mapping(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="mapping"):
            load_grid(path)

    def test_bad_key_names_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"workloads": ["SP"], "warp": 9}))
        with pytest.raises(ValueError, match="grid.json"):
            load_grid(path)

    @pytest.mark.skipif(tomllib is None, reason="tomllib needs Python >= 3.11")
    def test_toml_spec(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            'workloads = ["SP"]\nschemes = ["LRU", "MRD"]\nfractions = [0.4]\n'
        )
        grid = load_grid(path)
        assert len(grid.cells()) == 2
