"""Regression: shared ProfileStore paths contaminate MRD across configs.

Workload signatures encode only the application *name* — not scale,
iterations or partitions — and recurring-mode MRD trusts whatever
complete profile the store serves for a signature.  Two configurations
of the same workload sharing one store path therefore silently poison
each other: the second run evicts and purges against the first run's
reference distances.  The sweep runner prevents this by giving every
cell its own fingerprint-keyed profile directory.
"""

from __future__ import annotations

import pytest

from repro.core.app_profiler import ProfileStore
from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for
from repro.simulator.config import CLUSTERS
from repro.simulator.engine import simulate
from repro.simulator.reporting import metrics_to_dict
from repro.sweep.runner import run_cells
from repro.sweep.schemes import SchemeSpec
from repro.sweep.spec import CellSpec
from repro.sweep.store import ResultStore


@pytest.fixture()
def small_and_big_dags():
    return (
        build_workload_dag("KM", iterations=2, partitions=8),
        build_workload_dag("KM", iterations=6, partitions=8),
    )


def test_signature_ignores_build_parameters(small_and_big_dags):
    # The contamination precondition: both configs share one signature.
    small, big = small_and_big_dags
    assert small.app.signature == big.app.signature


def test_shared_profile_store_contaminates(tmp_path, small_and_big_dags):
    small, big = small_and_big_dags
    cluster = CLUSTERS["test"]
    config = cluster.with_cache(cache_mb_for(big, 0.3, cluster))
    path = tmp_path / "profiles.json"

    # First run: ad-hoc MRD on the small config persists a *complete*
    # profile under the shared signature.
    simulate(small, config, MrdScheme(mode="adhoc",
                                      profile_store=ProfileStore(path=path)))

    # Second run: recurring MRD on the big config trusts that stale
    # profile instead of its own DAG.
    contaminated = simulate(
        big, config,
        MrdScheme(mode="recurring", profile_store=ProfileStore(path=path)),
    )
    clean = simulate(big, config, MrdScheme(mode="recurring"))
    assert contaminated.hit_ratio < clean.hit_ratio
    assert contaminated.jct > clean.jct


def test_runner_isolates_profiles_per_cell(tmp_path):
    # Two configurations of the same workload, both with file-backed
    # profile stores, in one sweep: each must behave exactly like a run
    # with a private (empty) store — no cross-cell contamination.
    mrd = SchemeSpec("MRD")
    cells = [
        CellSpec(workload="KM", scheme_spec=mrd, cluster="test",
                 cache_fraction=0.3, iterations=2, partitions=8,
                 profile_store=True),
        CellSpec(workload="KM", scheme_spec=mrd, cluster="test",
                 cache_fraction=0.3, iterations=6, partitions=8,
                 profile_store=True),
    ]
    store = ResultStore(tmp_path)
    outcome = run_cells(cells, store=store)
    outcome.raise_on_error()

    for cell in cells:
        dag = build_workload_dag("KM", iterations=cell.iterations, partitions=8)
        cluster = CLUSTERS["test"]
        config = cluster.with_cache(
            cache_mb_for(dag, cell.cache_fraction, cluster)
        )
        reference = simulate(dag, config, MrdScheme(mode="recurring"))
        reference.scheme = cell.scheme
        assert outcome.result_for(cell).metrics == metrics_to_dict(reference)

    # And the stores really are distinct directories, one per cell.
    profile_dirs = sorted(p.name for p in store.profiles_dir.iterdir())
    assert profile_dirs == sorted(c.fingerprint() for c in cells)
