"""Unit tests for DAG analysis (Table 1/3 statistics, peak live set)."""

import pytest

from repro.dag.analysis import (
    distance_stats,
    live_cached_profile,
    peak_live_cached_mb,
    reference_trace,
    workload_characteristics,
)
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from tests.conftest import make_iterative_app, make_linear_app


def _no_cache_app():
    ctx = SparkContext("nocache")
    ctx.text_file("a", 8, 2).reduce_by_key().save()
    return SparkApplication(ctx)


class TestDistanceStats:
    def test_no_cache_means_zero_distances(self):
        stats = distance_stats(build_dag(_no_cache_app()))
        assert stats.avg_job_distance == 0.0
        assert stats.max_stage_distance == 0

    def test_linear_app_gaps(self):
        dag = build_dag(make_linear_app(num_jobs=4))
        stats = distance_stats(dag)
        # points touched in jobs 0,1,2,3 → three job gaps of 1.
        assert stats.avg_job_distance == pytest.approx(1.0)
        assert stats.max_job_distance == 1

    def test_stage_distance_counts_skipped_ids(self):
        dag = build_dag(make_iterative_app(iterations=4))
        stats = distance_stats(dag)
        # Skipped-stage inflation: StageID gaps exceed job gaps.
        assert stats.avg_stage_distance > stats.avg_job_distance
        assert stats.max_stage_distance > stats.max_job_distance

    def test_workload_name_defaults_to_signature(self):
        dag = build_dag(make_linear_app(name="sig-name"))
        assert distance_stats(dag).workload == "sig-name"


class TestWorkloadCharacteristics:
    def test_counts(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        chars = workload_characteristics(dag)
        assert chars.num_jobs == 3
        assert chars.num_active_stages == 3
        assert chars.num_cached_rdds == 1
        assert chars.refs_per_rdd == pytest.approx(2.0)
        assert chars.refs_per_stage == pytest.approx(2 / 3)

    def test_input_mb(self):
        chars = workload_characteristics(build_dag(make_linear_app()))
        assert chars.input_mb == pytest.approx(64.0)

    def test_shuffle_volumes_positive_for_wide_app(self):
        chars = workload_characteristics(build_dag(_no_cache_app()))
        assert chars.shuffle_read_mb > 0
        assert chars.shuffle_write_mb > 0

    def test_stage_inputs_cover_cache_reads(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        chars = workload_characteristics(dag)
        # 1 input read (64) + 2 cached reads (64 each) = 192.
        assert chars.total_stage_input_mb == pytest.approx(192.0)


class TestPeakLive:
    def test_no_cache_is_zero(self):
        assert peak_live_cached_mb(build_dag(_no_cache_app())) == 0.0

    def test_unpersist_lowers_peak(self):
        kept = peak_live_cached_mb(build_dag(make_iterative_app(iterations=5)))
        dropped = peak_live_cached_mb(
            build_dag(make_iterative_app(iterations=5, unpersist=True))
        )
        assert dropped < kept

    def test_peak_at_least_largest_rdd(self):
        dag = build_dag(make_linear_app())
        largest = max(p.rdd.size_mb for p in dag.profiles.values())
        assert peak_live_cached_mb(dag) >= largest

    def test_profile_covers_every_stage(self):
        dag = build_dag(make_iterative_app(iterations=4, unpersist=True))
        profile = live_cached_profile(dag)
        assert [seq for seq, _ in profile] == list(range(dag.num_active_stages))
        assert all(mb >= 0 for _, mb in profile)

    def test_profile_is_nonmonotone_with_unpersists(self):
        dag = build_dag(make_iterative_app(iterations=5, unpersist=True))
        values = [mb for _, mb in live_cached_profile(dag)]
        assert any(b < a for a, b in zip(values, values[1:])), (
            "unpersists should make the live curve dip"
        )

    def test_peak_equals_profile_max(self):
        dag = build_dag(make_iterative_app(iterations=4, unpersist=True))
        assert peak_live_cached_mb(dag) == max(
            mb for _, mb in live_cached_profile(dag)
        )


class TestReferenceTrace:
    def test_sorted_and_typed(self):
        dag = build_dag(make_iterative_app(iterations=3))
        trace = reference_trace(dag)
        assert trace == sorted(trace, key=lambda e: (e[0], e[1], e[2] == "read"))
        assert {kind for _, _, kind in trace} <= {"write", "read"}

    def test_writes_precede_reads_per_rdd(self):
        dag = build_dag(make_linear_app())
        trace = reference_trace(dag)
        first_event = {}
        for seq, rdd_id, kind in trace:
            first_event.setdefault(rdd_id, kind)
        assert all(kind == "write" for kind in first_event.values())
