"""Tests for DAG export (networkx + DOT)."""

import networkx as nx
import pytest

from repro.dag.visualize import (
    lineage_graph,
    lineage_to_dot,
    stage_graph,
    stages_to_dot,
)


class TestNetworkxViews:
    def test_lineage_nodes_and_edges(self, iterative_dag):
        g = lineage_graph(iterative_dag)
        assert g.number_of_nodes() == len(iterative_dag.app.rdds)
        assert nx.is_directed_acyclic_graph(g)
        cached = [n for n, d in g.nodes(data=True) if d["cached"]]
        assert len(cached) == len(iterative_dag.profiles)

    def test_lineage_edge_kinds(self, iterative_dag):
        g = lineage_graph(iterative_dag)
        kinds = {d["narrow"] for _, _, d in g.edges(data=True)}
        assert kinds == {True, False}  # both narrow and shuffle edges

    def test_stage_graph_matches_dag(self, iterative_dag):
        g = stage_graph(iterative_dag)
        assert g.number_of_nodes() == iterative_dag.num_stages
        assert nx.is_directed_acyclic_graph(g)
        skipped = [n for n, d in g.nodes(data=True) if d["skipped"]]
        assert len(skipped) == iterative_dag.num_stages - iterative_dag.num_active_stages


class TestDot:
    def test_lineage_dot_structure(self, iterative_dag):
        dot = lineage_to_dot(iterative_dag)
        assert dot.startswith("digraph lineage {") and dot.endswith("}")
        assert dot.count("->") == sum(len(r.deps) for r in iterative_dag.app.rdds)
        assert "shuffle" in dot
        assert "fillcolor" in dot  # cached highlighting present

    def test_stage_dot_clusters_jobs(self, iterative_dag):
        dot = stages_to_dot(iterative_dag)
        assert dot.count("subgraph cluster_job") == iterative_dag.num_jobs
        assert "(skipped)" in dot

    def test_stage_dot_without_skipped(self, iterative_dag):
        dot = stages_to_dot(iterative_dag, include_skipped=False)
        assert "(skipped)" not in dot
        # Every active stage still present.
        for stage in iterative_dag.active_stages:
            assert f"s{stage.id} " in dot or f"s{stage.id}[" in dot or f"s{stage.id} [" in dot
