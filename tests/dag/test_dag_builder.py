"""Unit tests for the DAG builder: stages, skipping, reference profiles."""

import pytest

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag
from tests.conftest import make_diamond_app, make_iterative_app, make_linear_app


def _app(program, name="t"):
    ctx = SparkContext(name)
    program(ctx)
    return SparkApplication(ctx)


class TestStageSplitting:
    def test_narrow_chain_is_one_stage(self):
        dag = build_dag(_app(lambda ctx: ctx.text_file("a", 8, 2).map().filter().count()))
        assert dag.num_stages == 1
        assert dag.num_active_stages == 1
        (stage,) = dag.active_stages
        assert stage.is_result
        assert len(stage.pipeline) == 3

    def test_shuffle_splits_two_stages(self):
        dag = build_dag(_app(lambda ctx: ctx.text_file("a", 8, 2).reduce_by_key().count()))
        assert dag.num_stages == 2
        map_stage, result = dag.stages
        assert map_stage.shuffle_dep is not None and not map_stage.is_result
        assert result.is_result
        assert result.parent_stage_ids == (map_stage.id,)

    def test_join_creates_two_parent_stages(self, diamond_dag):
        result = diamond_dag.active_stages[-1]
        assert len(result.parent_stage_ids) == 2

    def test_stage_ids_globally_sequential(self, iterative_dag):
        assert [s.id for s in iterative_dag.stages] == list(range(iterative_dag.num_stages))

    def test_parents_created_before_children(self, iterative_dag):
        for stage in iterative_dag.stages:
            assert all(pid < stage.id for pid in stage.parent_stage_ids)

    def test_active_seq_contiguous_and_ordered(self, iterative_dag):
        seqs = [s.seq for s in iterative_dag.active_stages]
        assert seqs == list(range(len(seqs)))

    def test_skipped_stages_have_no_seq(self, iterative_dag):
        for stage in iterative_dag.stages:
            if stage.skipped:
                assert stage.seq == -1
                assert stage.pipeline == ()


class TestStageSkipping:
    def test_repeated_action_skips_materialized_shuffle(self):
        def program(ctx):
            r = ctx.text_file("a", 8, 2).reduce_by_key()
            r.count()  # job 0: map + result
            r.count()  # job 1: map skipped, result re-runs

        dag = build_dag(_app(program))
        assert dag.num_stages == 4
        assert dag.num_active_stages == 3
        job1 = dag.jobs[1]
        skipped = [dag.stage(sid) for sid in job1.stage_ids if dag.stage(sid).skipped]
        assert len(skipped) == 1
        assert skipped[0].shuffle_dep is not None

    def test_iterative_app_grows_skipped_history(self):
        dag = build_dag(make_iterative_app(iterations=4))
        assert dag.num_stages > dag.num_active_stages
        # Later jobs contain strictly more skipped stages.
        skipped_per_job = [
            sum(1 for sid in job.stage_ids if dag.stage(sid).skipped) for job in dag.jobs
        ]
        assert skipped_per_job[0] == 0
        assert skipped_per_job[-2] >= skipped_per_job[1]

    def test_cached_rdd_truncates_submission(self):
        def program(ctx):
            base = ctx.text_file("a", 8, 2).reduce_by_key(name="wide").cache()
            base.count()          # job 0 computes the shuffle + caches
            base.map().count()    # job 1 reads cache: map stage skipped

        dag = build_dag(_app(program))
        job1_active = [dag.stage(s) for s in dag.jobs[1].active_stage_ids]
        assert len(job1_active) == 1
        assert job1_active[0].is_result


class TestReferenceProfiles:
    def test_cached_rdd_write_then_reads(self):
        dag = build_dag(make_linear_app(num_jobs=3))
        (prof,) = [p for p in dag.profiles.values() if p.rdd.name == "points"]
        assert prof.created_seq == 0
        assert prof.read_seqs == [1, 2]
        assert prof.read_jobs == [1, 2]
        assert prof.reference_count == 2

    def test_uncached_rdds_have_no_profile(self, linear_dag):
        names = {p.rdd.name for p in linear_dag.profiles.values()}
        assert names == {"points"}

    def test_reads_only_after_creation(self, iterative_dag):
        for prof in iterative_dag.profiles.values():
            assert all(s >= prof.created_seq for s in prof.read_seqs)

    def test_unpersist_recorded_on_profile(self):
        dag = build_dag(make_iterative_app(iterations=3, unpersist=True))
        unpersisted = [p for p in dag.profiles.values() if p.unpersist_after_job is not None]
        assert unpersisted, "expected unpersist events to land on profiles"

    def test_diamond_intra_job_read(self, diamond_dag):
        (prof,) = [p for p in diamond_dag.profiles.values() if p.rdd.name == "base"]
        # base computed by the first branch's map stage, read by the second.
        assert prof.reference_count == 1
        assert prof.read_jobs == [prof.created_job]

    def test_cache_reads_match_profiles(self, iterative_dag):
        reads_from_stages = sum(len(s.cache_reads) for s in iterative_dag.active_stages)
        reads_from_profiles = sum(p.reference_count for p in iterative_dag.profiles.values())
        assert reads_from_stages == reads_from_profiles


class TestStageContents:
    def test_input_reads_recorded(self, linear_dag):
        first = linear_dag.active_stages[0]
        assert [r.name for r in first.input_reads] == ["train"]
        assert first.input_read_mb == pytest.approx(64.0)

    def test_later_stages_truncate_at_cache(self, linear_dag):
        later = linear_dag.active_stages[1]
        assert later.input_reads == ()
        assert [r.name for r in later.cache_reads] == ["points"]

    def test_shuffle_read_mb(self):
        dag = build_dag(_app(lambda ctx: ctx.text_file("a", 8, 2).reduce_by_key().count()))
        result = dag.active_stages[-1]
        assert result.shuffle_read_mb == pytest.approx(8.0)

    def test_compute_cost_positive(self, iterative_dag):
        assert all(s.compute_cost_per_task >= 0 for s in iterative_dag.active_stages)

    def test_job_of_seq(self, iterative_dag):
        for stage in iterative_dag.active_stages:
            assert iterative_dag.job_of_seq(stage.seq) == stage.job_id
