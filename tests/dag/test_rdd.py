"""Unit tests for the RDD lineage abstraction."""

import pytest

from repro.dag.context import SparkContext
from repro.dag.rdd import (
    NarrowDependency,
    RDD,
    ShuffleDependency,
    StorageLevel,
    total_size_mb,
)


@pytest.fixture
def ctx():
    return SparkContext("t")


class TestRddConstruction:
    def test_ids_are_sequential(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.map()
        c = b.filter()
        assert (a.id, b.id, c.id) == (0, 1, 2)

    def test_registered_on_context(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.map()
        assert ctx.rdds == [a, b]

    def test_rejects_nonpositive_partitions(self, ctx):
        with pytest.raises(ValueError, match="num_partitions"):
            RDD(ctx, deps=[], num_partitions=0, partition_size_mb=1, compute_cost=0)

    def test_rejects_negative_size(self, ctx):
        with pytest.raises(ValueError, match="partition_size_mb"):
            RDD(ctx, deps=[], num_partitions=1, partition_size_mb=-1, compute_cost=0)

    def test_rejects_negative_cost(self, ctx):
        with pytest.raises(ValueError, match="compute_cost"):
            RDD(ctx, deps=[], num_partitions=1, partition_size_mb=1, compute_cost=-1)

    def test_default_name_includes_op_and_id(self, ctx):
        a = ctx.text_file("", 10, 2)
        assert a.name == "textFile-0"

    def test_size_mb_sums_partitions(self, ctx):
        a = ctx.text_file("a", 10, 4)
        assert a.size_mb == pytest.approx(10.0)
        assert a.partition_size_mb == pytest.approx(2.5)

    def test_total_size_helper(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = ctx.text_file("b", 6, 2)
        assert total_size_mb([a, b]) == pytest.approx(16.0)


class TestPersistence:
    def test_default_not_cached(self, ctx):
        assert not ctx.text_file("a", 10, 2).is_cached

    def test_cache_sets_memory_and_disk(self, ctx):
        a = ctx.text_file("a", 10, 2).cache()
        assert a.storage_level is StorageLevel.MEMORY_AND_DISK
        assert a.is_cached

    def test_unpersist_clears(self, ctx):
        a = ctx.text_file("a", 10, 2).cache()
        a.unpersist()
        assert not a.is_cached

    def test_cache_returns_self_for_chaining(self, ctx):
        a = ctx.text_file("a", 10, 2)
        assert a.cache() is a


class TestDependencies:
    def test_map_creates_narrow_dep(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.map()
        (dep,) = b.deps
        assert isinstance(dep, NarrowDependency)
        assert not dep.is_shuffle
        assert dep.parent is a

    def test_shuffle_dep_has_unique_id(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.reduce_by_key()
        c = a.group_by_key()
        (d1,) = b.deps
        (d2,) = c.deps
        assert isinstance(d1, ShuffleDependency) and d1.is_shuffle
        assert d1.shuffle_id != d2.shuffle_id

    def test_parents_property(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = ctx.text_file("b", 10, 2)
        j = a.join(b)
        assert j.parents == (a, b)


class TestTraversal:
    def test_narrow_ancestors_stops_at_shuffle(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.map()
        c = b.reduce_by_key()
        d = c.map()
        names = {r.name for r in d.narrow_ancestors()}
        assert names == {d.name, c.name}

    def test_ancestors_crosses_shuffles(self, ctx):
        a = ctx.text_file("a", 10, 2)
        d = a.map().reduce_by_key().map()
        assert {r.id for r in d.ancestors()} == {r.id for r in ctx.rdds}

    def test_traversal_handles_diamonds_once(self, ctx):
        a = ctx.text_file("a", 10, 2)
        b = a.map()
        c = a.filter()
        d = b.union(c)
        visited = list(d.narrow_ancestors())
        assert len(visited) == len({r.id for r in visited}) == 4
