"""Unit tests for SparkContext / SparkApplication recording."""

import pytest

from repro.dag.context import SparkApplication, SparkContext, record_application


class TestContext:
    def test_parallelize_has_no_deps_and_no_input_flag(self):
        ctx = SparkContext("t")
        r = ctx.parallelize("p", size_mb=4, num_partitions=2)
        assert r.deps == ()
        assert not r.is_input

    def test_text_file_is_input(self):
        ctx = SparkContext("t")
        assert ctx.text_file("f", 10, 2).is_input

    def test_unpersist_records_event_after_latest_job(self):
        ctx = SparkContext("t")
        a = ctx.text_file("a", 10, 2).cache()
        a.count()  # job 0
        a.count()  # job 1
        ctx.unpersist(a)
        (ev,) = ctx.unpersist_events
        assert ev.after_job_id == 1
        assert ev.rdd is a
        assert not a.is_cached

    def test_cached_rdds_includes_unpersisted(self):
        ctx = SparkContext("t")
        a = ctx.text_file("a", 10, 2).cache()
        b = a.map().cache()
        a.count()
        ctx.unpersist(a)
        assert {r.id for r in ctx.cached_rdds} == {a.id, b.id}

    def test_run_job_names_default(self):
        ctx = SparkContext("t")
        a = ctx.text_file("a", 10, 2)
        a.count()
        assert ctx.jobs[0].name == "count-0"


class TestRecordApplication:
    def test_records_signature(self):
        app = record_application(lambda ctx: ctx.text_file("x", 1, 1).count(), "myapp")
        assert app.signature == "myapp"
        assert len(app.jobs) == 1

    def test_rejects_actionless_program(self):
        with pytest.raises(ValueError, match="no jobs"):
            record_application(lambda ctx: ctx.text_file("x", 1, 1), "noop")

    def test_application_defaults_signature_to_app_name(self):
        ctx = SparkContext("named")
        ctx.text_file("x", 1, 1).count()
        app = SparkApplication(ctx)
        assert app.signature == "named"
        assert app.rdds == ctx.rdds
