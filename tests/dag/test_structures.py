"""Direct unit tests for the compiled DAG structures."""

import pytest

from repro.dag.context import SparkContext
from repro.dag.dag_builder import build_dag
from repro.dag.context import SparkApplication
from repro.dag.structures import RddReferenceProfile
from tests.conftest import make_iterative_app


@pytest.fixture
def rdd():
    return SparkContext("t").text_file("a", size_mb=8.0, num_partitions=2)


class TestRddReferenceProfile:
    def test_empty_profile(self, rdd):
        prof = RddReferenceProfile(rdd=rdd)
        assert prof.reference_count == 0
        assert prof.stage_gaps() == []
        assert prof.job_gaps() == []
        assert prof.future_read_seqs(0) == []

    def test_gaps_include_creation(self, rdd):
        prof = RddReferenceProfile(
            rdd=rdd, created_seq=2, created_job=1, created_stage_id=5,
            read_seqs=[4, 9], read_jobs=[2, 4], read_stage_ids=[8, 20],
        )
        assert prof.active_stage_gaps() == [2, 5]
        assert prof.stage_gaps() == [3, 12]
        assert prof.job_gaps() == [1, 2]

    def test_duplicate_job_touches_yield_zero_gaps(self, rdd):
        prof = RddReferenceProfile(
            rdd=rdd, created_seq=0, created_job=0, created_stage_id=0,
            read_seqs=[1, 2], read_jobs=[0, 0], read_stage_ids=[1, 2],
        )
        assert prof.job_gaps() == [0, 0]

    def test_future_reads_filter(self, rdd):
        prof = RddReferenceProfile(rdd=rdd, created_seq=0, read_seqs=[2, 5, 9])
        assert prof.future_read_seqs(5) == [5, 9]
        assert prof.future_read_seqs(10) == []


class TestStageProperties:
    @pytest.fixture(scope="class")
    def dag(self):
        return build_dag(make_iterative_app(iterations=3))

    def test_result_vs_shuffle_map(self, dag):
        results = [s for s in dag.stages if s.is_result]
        maps = [s for s in dag.stages if not s.is_result]
        assert len(results) == dag.num_jobs
        assert all(s.shuffle_dep is None for s in results)
        assert all(s.shuffle_dep is not None for s in maps)

    def test_active_flag_matches_seq(self, dag):
        for stage in dag.stages:
            assert stage.is_active == (not stage.skipped) == (stage.seq >= 0)

    def test_volume_properties_consistent(self, dag):
        for stage in dag.active_stages:
            assert stage.shuffle_read_mb == pytest.approx(
                sum(d.parent.size_mb for d in stage.shuffle_reads)
            )
            assert stage.input_read_mb == pytest.approx(
                sum(r.size_mb for r in stage.input_reads)
            )

    def test_job_records_its_stages(self, dag):
        for job in dag.jobs:
            assert set(job.active_stage_ids) <= set(job.stage_ids)
            for sid in job.stage_ids:
                assert dag.stage(sid).job_id == job.id
            assert job.action == job.spec.action


class TestCogroup:
    def test_cogroup_is_wide_on_both_parents(self):
        ctx = SparkContext("t")
        a = ctx.text_file("a", 8.0, 2)
        b = ctx.text_file("b", 8.0, 2)
        c = a.cogroup(b, name="cg")
        assert len(c.deps) == 2
        assert all(d.is_shuffle for d in c.deps)
        c.count()
        dag = build_dag(SparkApplication(ctx))
        assert dag.num_stages == 3  # two map-side stages + result
