"""Unit tests for the transformation API (sizes, costs, wiring)."""

import pytest

from repro.dag.context import SparkContext
from repro.dag.rdd import NarrowDependency, ShuffleDependency
from repro.dag.transformations import DEFAULT_CPU_PER_MB, DEFAULT_WIDE_CPU_PER_MB


@pytest.fixture
def ctx():
    return SparkContext("t")


@pytest.fixture
def base(ctx):
    return ctx.text_file("base", size_mb=40.0, num_partitions=4)  # 10 MB/part


class TestNarrowOps:
    def test_map_preserves_size_by_default(self, base):
        assert base.map().partition_size_mb == pytest.approx(10.0)

    def test_map_size_factor(self, base):
        assert base.map(size_factor=0.5).partition_size_mb == pytest.approx(5.0)

    def test_map_default_cpu_cost(self, base):
        assert base.map().compute_cost == pytest.approx(DEFAULT_CPU_PER_MB * 10.0)

    def test_map_custom_cpu(self, base):
        assert base.map(cpu_per_mb=0.1).compute_cost == pytest.approx(1.0)

    def test_filter_selectivity_bounds(self, base):
        with pytest.raises(ValueError, match="selectivity"):
            base.filter(selectivity=1.5)

    def test_filter_shrinks(self, base):
        assert base.filter(selectivity=0.25).partition_size_mb == pytest.approx(2.5)

    def test_flat_map_inflates(self, base):
        assert base.flat_map(size_factor=3.0).partition_size_mb == pytest.approx(30.0)

    def test_sample_fraction_bounds(self, base):
        with pytest.raises(ValueError, match="fraction"):
            base.sample(fraction=0.0)

    def test_union_concatenates_partitions(self, ctx, base):
        other = ctx.text_file("o", size_mb=20.0, num_partitions=2)
        u = base.union(other)
        assert u.num_partitions == 6
        assert u.size_mb == pytest.approx(60.0)

    def test_zip_partitions_requires_alignment(self, ctx, base):
        other = ctx.text_file("o", size_mb=20.0, num_partitions=2)
        with pytest.raises(ValueError, match="equal partition counts"):
            base.zip_partitions(other)

    def test_zip_partitions_combines_sizes(self, ctx, base):
        other = ctx.text_file("o", size_mb=20.0, num_partitions=4)
        z = base.zip_partitions(other, size_factor=0.5)
        assert z.partition_size_mb == pytest.approx((10.0 + 5.0) * 0.5)
        assert all(isinstance(d, NarrowDependency) for d in z.deps)


class TestWideOps:
    def test_reduce_by_key_is_shuffle(self, base):
        r = base.reduce_by_key()
        assert all(isinstance(d, ShuffleDependency) for d in r.deps)

    def test_reduce_by_key_combines(self, base):
        assert base.reduce_by_key(size_factor=0.5).partition_size_mb == pytest.approx(5.0)

    def test_wide_default_cpu(self, base):
        r = base.group_by_key()
        assert r.compute_cost == pytest.approx(DEFAULT_WIDE_CPU_PER_MB * 10.0)

    def test_join_has_two_shuffle_deps(self, ctx, base):
        other = ctx.text_file("o", size_mb=40.0, num_partitions=4)
        j = base.join(other)
        assert len(j.deps) == 2
        assert len({d.shuffle_id for d in j.deps}) == 2

    def test_join_custom_partitions(self, ctx, base):
        other = ctx.text_file("o", size_mb=40.0, num_partitions=4)
        assert base.join(other, num_partitions=16).num_partitions == 16

    def test_sort_is_shuffle(self, base):
        assert base.sort_by_key().deps[0].is_shuffle

    def test_distinct_shrinks(self, base):
        assert base.distinct(size_factor=0.8).partition_size_mb == pytest.approx(8.0)

    def test_partition_by_preserves_size(self, base):
        assert base.partition_by().partition_size_mb == pytest.approx(10.0)


class TestActions:
    def test_actions_record_jobs_in_order(self, ctx, base):
        base.count()
        base.collect()
        base.save()
        assert [j.action for j in ctx.jobs] == ["count", "collect", "saveAsTextFile"]
        assert [j.job_id for j in ctx.jobs] == [0, 1, 2]

    def test_action_returns_job_id(self, base):
        assert base.count() == 0
        assert base.reduce() == 1
        assert base.foreach() == 2
