"""Markdown link check: every relative link and anchor must resolve.

Covers README.md, DESIGN.md, EXPERIMENTS.md and everything under
docs/.  External (http/https/mailto) links are not fetched — CI runs
offline — but relative file targets must exist and fragment anchors
must match a heading in the target document, using GitHub's
heading-slug rules.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOCS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md", REPO_ROOT / "EXPERIMENTS.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _strip_code(text: str) -> str:
    """Remove fenced code blocks and inline code spans."""
    return re.sub(r"`[^`]*`", "", _FENCE.sub("", text))


def _links(path: Path) -> list[str]:
    return _LINK.findall(_strip_code(path.read_text()))


def _slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    headings = re.findall(
        r"^#{1,6}\s+(.*)$", _FENCE.sub("", path.read_text()), re.MULTILINE
    )
    return {_slug(h) for h in headings}


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.exists():
            broken.append(f"{target} -> missing file {path_part}")
            continue
        if fragment and resolved.suffix == ".md" and fragment not in _anchors(resolved):
            broken.append(f"{target} -> no heading for anchor #{fragment}")
    assert not broken, f"broken links in {doc.name}: {broken}"


def test_docs_index_links_every_guide():
    # The README's documentation table must not drift from docs/.
    readme_targets = {
        link.partition("#")[0] for link in _links(REPO_ROOT / "README.md")
    }
    for guide in (REPO_ROOT / "docs").glob("*.md"):
        assert f"docs/{guide.name}" in readme_targets, (
            f"docs/{guide.name} is not linked from README.md"
        )
