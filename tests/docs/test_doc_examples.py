"""Execute the fenced python examples in the docs against the live code.

Each documented example in docs/policies.md and docs/sweeping.md runs
here exactly as printed (blocks within one document share a namespace,
so later examples may build on earlier ones).  A doc edit that breaks
an example — or a code change that invalidates the documented API —
fails this test.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Documents whose ```python blocks are executable end-to-end.
EXECUTABLE_DOCS = (
    "docs/policies.md",
    "docs/sweeping.md",
    "docs/distributed-sweeps.md",
    "docs/multitenancy.md",
    "docs/elasticity.md",
)

_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks(relpath: str) -> list[str]:
    return _PYTHON_FENCE.findall((REPO_ROOT / relpath).read_text())


@pytest.mark.parametrize("relpath", EXECUTABLE_DOCS)
def test_python_examples_run(relpath):
    blocks = _blocks(relpath)
    assert blocks, f"{relpath} has no ```python examples to run"
    namespace: dict = {"__name__": f"docexample:{relpath}"}
    for index, source in enumerate(blocks):
        code = compile(source, f"{relpath}[example {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs is the point
