"""Docstring floor: every module and package in src documents itself.

This is the locally-runnable twin of the ruff D100/D104 gate in CI's
lint job (ruff is not a test dependency).
"""

from __future__ import annotations

import ast
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_every_module_has_a_docstring():
    missing = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(REPO_ROOT)))
    assert not missing, f"modules without docstrings: {missing}"
