"""Unit tests for the MRD_Table (distance bookkeeping)."""

import math

import pytest

from repro.core.mrd_table import INFINITE, MrdTable
from repro.core.reference_distance import Reference


def refs(*triples):
    return [Reference(seq=s, job_id=j, rdd_id=r) for s, j, r in triples]


class TestAddAndQuery:
    def test_empty_table_all_infinite(self):
        t = MrdTable()
        assert t.distance(0) == INFINITE
        assert 0 not in t

    def test_distance_is_gap_to_next_reference(self):
        t = MrdTable()
        t.add_references(refs((3, 0, 7), (9, 1, 7)))
        assert t.distance(7) == 3.0

    def test_comparison_uses_lowest_reference(self):
        t = MrdTable()
        t.add_references(refs((10, 1, 7), (2, 0, 7)))
        assert t.distance(7) == 2.0

    def test_duplicate_references_ignored(self):
        t = MrdTable()
        t.add_references(refs((3, 0, 7)))
        t.add_references(refs((3, 0, 7)))
        assert t.size() == 1

    def test_track_without_references(self):
        t = MrdTable()
        t.track(5)
        assert 5 in t
        assert t.distance(5) == INFINITE
        assert t.dead_rdds() == [5]

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            MrdTable(metric="wallclock")


class TestAdvance:
    def test_advance_decrements_distance(self):
        t = MrdTable()
        t.add_references(refs((5, 0, 1)))
        t.advance(2, 0)
        assert t.distance(1) == 3.0

    def test_reference_at_current_stage_is_zero(self):
        t = MrdTable()
        t.add_references(refs((5, 0, 1)))
        t.advance(5, 0)
        assert t.distance(1) == 0.0

    def test_passing_a_reference_deletes_it(self):
        t = MrdTable()
        t.add_references(refs((2, 0, 1), (6, 1, 1)))
        t.advance(3, 0)
        assert t.distance(1) == 3.0  # next ref is seq 6

    def test_exhausted_goes_infinite(self):
        t = MrdTable()
        t.add_references(refs((2, 0, 1)))
        t.advance(3, 0)
        assert t.distance(1) == INFINITE
        assert t.dead_rdds() == [1]

    def test_cannot_move_backwards(self):
        t = MrdTable()
        t.advance(5, 1)
        with pytest.raises(ValueError):
            t.advance(4, 1)

    def test_late_references_resurrect(self):
        """Ad-hoc mode: a new job's references revive a dead RDD."""
        t = MrdTable()
        t.add_references(refs((1, 0, 9)))
        t.advance(2, 0)
        assert t.dead_rdds() == [9]
        t.add_references(refs((4, 1, 9)))
        assert t.dead_rdds() == []
        assert t.distance(9) == 2.0


class TestJobMetric:
    def test_job_distance(self):
        t = MrdTable(metric="job")
        t.add_references(refs((10, 3, 1)))
        t.advance(0, 0)
        assert t.distance(1) == 3.0
        t.advance(5, 2)
        assert t.distance(1) == 1.0

    def test_same_job_reference_is_zero(self):
        t = MrdTable(metric="job")
        t.add_references(refs((4, 1, 1)))
        t.advance(2, 1)
        assert t.distance(1) == 0.0


class TestCandidates:
    def test_sorted_nearest_first(self):
        t = MrdTable()
        t.add_references(refs((5, 0, 1), (2, 0, 2), (9, 0, 3)))
        t.track(4)  # infinite: excluded
        cands = t.candidates_by_distance()
        assert [rdd for _, rdd in cands] == [2, 1, 3]
        assert [d for d, _ in cands] == [2.0, 5.0, 9.0]

    def test_forget_removes(self):
        t = MrdTable()
        t.add_references(refs((5, 0, 1)))
        t.forget(1)
        assert 1 not in t
        assert t.candidates_by_distance() == []

    def test_size_counts_references(self):
        t = MrdTable()
        t.add_references(refs((1, 0, 1), (2, 0, 1), (3, 0, 2)))
        assert t.size() == 3
