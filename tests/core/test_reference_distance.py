"""Unit tests for reference extraction from job DAGs."""

import pytest

from repro.core.reference_distance import (
    Reference,
    cached_rdds_created_in_job,
    parse_application_references,
    parse_job_references,
)
from repro.dag.dag_builder import build_dag
from tests.conftest import make_iterative_app, make_linear_app


@pytest.fixture
def dag():
    return build_dag(make_linear_app(num_jobs=3))


class TestParseJob:
    def test_first_job_has_no_reads(self, dag):
        assert parse_job_references(dag, 0) == []

    def test_later_jobs_reference_cached_data(self, dag):
        refs = parse_job_references(dag, 1)
        assert len(refs) == 1
        assert refs[0].job_id == 1
        assert refs[0].seq == 1

    def test_out_of_range_job(self, dag):
        with pytest.raises(ValueError):
            parse_job_references(dag, 99)

    def test_references_sorted(self):
        dag = build_dag(make_iterative_app(iterations=3))
        for job in dag.jobs:
            refs = parse_job_references(dag, job.id)
            assert refs == sorted(refs)


class TestParseApplication:
    def test_union_of_jobs(self, dag):
        all_refs = parse_application_references(dag)
        per_job = [r for j in dag.jobs for r in parse_job_references(dag, j.id)]
        assert sorted(all_refs) == sorted(per_job)

    def test_matches_profile_counts(self, dag):
        all_refs = parse_application_references(dag)
        total = sum(p.reference_count for p in dag.profiles.values())
        assert len(all_refs) == total


class TestCreatedInJob:
    def test_points_created_in_job_zero(self, dag):
        created = cached_rdds_created_in_job(dag, 0)
        assert len(created) == 1
        assert dag.profiles[created[0]].rdd.name == "points"

    def test_no_creations_in_later_jobs(self, dag):
        assert cached_rdds_created_in_job(dag, 1) == []

    def test_reference_ordering_dataclass(self):
        a = Reference(seq=1, job_id=0, rdd_id=5)
        b = Reference(seq=2, job_id=0, rdd_id=1)
        assert a < b
