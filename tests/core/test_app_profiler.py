"""Unit tests for the AppProfiler and profile store."""

import pytest

from repro.core.app_profiler import AppProfiler, ApplicationProfile, ProfileStore
from repro.core.reference_distance import parse_application_references
from repro.dag.dag_builder import build_dag
from tests.conftest import make_linear_app


@pytest.fixture
def dag():
    return build_dag(make_linear_app(num_jobs=3))


class TestRecurringMode:
    def test_full_profile_up_front(self, dag):
        profiler = AppProfiler(dag, mode="recurring")
        refs = profiler.initial_references()
        assert refs == parse_application_references(dag)

    def test_job_submissions_add_nothing(self, dag):
        profiler = AppProfiler(dag, mode="recurring")
        profiler.initial_references()
        refs, created = profiler.on_job_submit(1)
        assert refs == []

    def test_created_rdds_reported(self, dag):
        profiler = AppProfiler(dag, mode="recurring")
        _, created = profiler.on_job_submit(0)
        assert len(created) == 1


class TestAdhocMode:
    def test_nothing_known_initially(self, dag):
        profiler = AppProfiler(dag, mode="adhoc")
        assert profiler.initial_references() == []

    def test_references_arrive_per_job(self, dag):
        profiler = AppProfiler(dag, mode="adhoc")
        refs0, _ = profiler.on_job_submit(0)
        refs1, _ = profiler.on_job_submit(1)
        assert refs0 == []
        assert len(refs1) == 1

    def test_finalize_stores_complete_profile(self, dag):
        store = ProfileStore()
        profiler = AppProfiler(dag, mode="adhoc", store=store)
        for job in dag.jobs:
            profiler.on_job_submit(job.id)
        profiler.finalize()
        stored = store.get(dag.app.signature)
        assert stored is not None and stored.complete
        assert stored.references == parse_application_references(dag)

    def test_partial_run_stored_incomplete(self, dag):
        store = ProfileStore()
        profiler = AppProfiler(dag, mode="adhoc", store=store)
        profiler.on_job_submit(0)
        profiler.finalize()
        stored = store.get(dag.app.signature)
        assert stored is not None and not stored.complete

    def test_recurring_degrades_to_adhoc_on_incomplete_profile(self, dag):
        store = ProfileStore()
        store.put(ApplicationProfile(signature=dag.app.signature, complete=False))
        profiler = AppProfiler(dag, mode="recurring", store=store)
        assert profiler.mode == "adhoc"

    def test_invalid_mode(self, dag):
        with pytest.raises(ValueError):
            AppProfiler(dag, mode="telepathic")


class TestProfileStorePersistence:
    def test_json_roundtrip(self, dag, tmp_path):
        path = tmp_path / "profiles.json"
        store = ProfileStore(path)
        profiler = AppProfiler(dag, mode="adhoc", store=store)
        for job in dag.jobs:
            profiler.on_job_submit(job.id)
        profiler.finalize()

        reloaded = ProfileStore(path)
        stored = reloaded.get(dag.app.signature)
        assert stored is not None
        assert stored.complete
        assert stored.references == parse_application_references(dag)

    def test_second_run_uses_stored_profile(self, dag, tmp_path):
        path = tmp_path / "profiles.json"
        store = ProfileStore(path)
        first = AppProfiler(dag, mode="adhoc", store=store)
        for job in dag.jobs:
            first.on_job_submit(job.id)
        first.finalize()

        second = AppProfiler(dag, mode="recurring", store=ProfileStore(path))
        assert second.mode == "recurring"
        assert second.initial_references() == parse_application_references(dag)

    def test_profile_json_schema(self):
        prof = ApplicationProfile(signature="x", complete=True)
        assert ApplicationProfile.from_json(prof.to_json()) == prof


class TestProfileStoreRobustness:
    """A damaged on-disk store must never take the simulation down."""

    @pytest.mark.parametrize("payload", [
        "{not json at all",                      # truncated / invalid JSON
        '{"sig": {"wrong": "shape"}}',           # valid JSON, wrong schema
        '{"sig": {"signature": "sig", "references": [[0]], '
        '"num_jobs_profiled": 1, "complete": true}}',  # malformed reference
        '[1, 2, 3]',                             # not even a mapping
    ], ids=["truncated", "wrong-schema", "bad-reference", "not-a-mapping"])
    def test_corrupted_store_ignored(self, payload, dag, tmp_path, caplog):
        path = tmp_path / "profiles.json"
        path.write_text(payload)
        with caplog.at_level("WARNING"):
            store = ProfileStore(path)
        assert store.get("sig") is None
        assert any("falling back" in r.message for r in caplog.records)

    def test_recurring_profiler_survives_corruption(self, dag, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text("{corrupted")
        profiler = AppProfiler(dag, mode="recurring", store=ProfileStore(path))
        # No stored profile survived: first-run behaviour (the profiler
        # derives references instead of crashing on the bad file).
        assert profiler.initial_references() == parse_application_references(dag)

    def test_corrupted_store_is_recoverable(self, dag, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text("{corrupted")
        store = ProfileStore(path)
        profiler = AppProfiler(dag, mode="adhoc", store=store)
        for job in dag.jobs:
            profiler.on_job_submit(job.id)
        profiler.finalize()
        # The rewrite replaced the damaged file with a valid store.
        reloaded = ProfileStore(path)
        assert reloaded.get(dag.app.signature) is not None
