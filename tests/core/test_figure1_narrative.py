"""The paper's Figure 1 narrative, executed.

§3.2/§4.1 walk through a block "D" with two upcoming references, stage
distances 1 and 10 (job distances 1 and 5): MRD keeps *both* recorded
but compares by the lowest; when execution passes the first reference
it is deleted and the next one takes over; when none remain the
distance is infinite and the block leads the eviction order.  This test
builds exactly that situation and checks every step of the story.
"""

import math

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.core.app_profiler import AppProfiler
from repro.core.cache_monitor import CacheMonitor
from repro.core.manager import MrdManager
from repro.core.mrd_table import MrdTable
from repro.core.reference_distance import Reference
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import build_dag


def test_block_d_story_on_a_raw_table():
    """Distances 1 and 10, consumed in order, then infinity."""
    table = MrdTable(metric="stage")
    table.add_references([
        Reference(seq=1, job_id=0, rdd_id=13),   # the near reference
        Reference(seq=10, job_id=5, rdd_id=13),  # the far reference
    ])
    table.advance(0, 0)
    assert table.distance(13) == 1.0          # comparison uses the lowest
    table.advance(2, 0)                        # the first reference passed
    assert table.distance(13) == 8.0           # the far one takes over
    table.advance(10, 5)
    assert table.distance(13) == 0.0           # being consumed right now
    table.advance(11, 5)
    assert math.isinf(table.distance(13))      # no references remain
    assert table.dead_rdds() == [13]

    jobs = MrdTable(metric="job")
    jobs.add_references([
        Reference(seq=1, job_id=1, rdd_id=13),
        Reference(seq=10, job_id=5, rdd_id=13),
    ])
    jobs.advance(0, 0)
    assert jobs.distance(13) == 1.0            # job distance of the near ref


def test_block_d_story_through_a_real_application():
    """The same story arising from an actual compiled DAG."""
    ctx = SparkContext("figure1")
    d = ctx.text_file("input", size_mb=16.0, num_partitions=4).map(name="D").cache()
    d.count(name="create-D")                  # job 0: computes D
    d.map_partitions(name="use-soon").collect(name="near-ref")  # job 1
    for i in range(3):                        # jobs 2-4: D untouched
        ctx.parallelize(f"other-{i}", 1.0, 4).count()
    d.map_partitions(name="use-late").collect(name="far-ref")   # job 5
    dag = build_dag(SparkApplication(ctx))

    manager = MrdManager(dag, AppProfiler(dag, mode="recurring"))
    # At creation time D's nearest reference is the very next stage.
    manager.table.advance(0, 0)
    near = manager.distance(d.id)
    assert near == 1.0
    # After the near reference passes, the far one (job 5) is next.
    manager.table.advance(2, 2)
    far = manager.distance(d.id)
    assert far == dag.num_active_stages - 1 - 2
    # Past the far reference: infinite → first in the eviction order.
    last = dag.num_active_stages - 1
    manager.table.advance(last, dag.job_of_seq(last))
    manager.table._refs[d.id].clear()
    monitor = CacheMonitor(0, manager)
    store = MemoryStore(100.0, monitor)
    store.put(Block(id=BlockId(d.id, 0), size_mb=1.0))
    store.put(Block(id=BlockId(999, 0), size_mb=1.0))
    # 999 is also unknown/infinite; D must still be rankable — both are
    # infinite, and any further touch cannot resurrect D.
    assert math.isinf(manager.distance(d.id))
    order = list(monitor.eviction_order(store))
    assert {b.rdd_id for b in order[:2]} == {d.id, 999}
