"""Unit tests for the per-node CacheMonitor."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.core.app_profiler import AppProfiler
from repro.core.cache_monitor import CacheMonitor
from repro.core.manager import MrdManager
from repro.dag.dag_builder import build_dag
from repro.policies.profile_oracle import INFINITE
from tests.conftest import make_iterative_app


@pytest.fixture
def manager():
    dag = build_dag(make_iterative_app(iterations=3))
    return MrdManager(dag, AppProfiler(dag, mode="recurring"))


@pytest.fixture
def monitor(manager):
    return CacheMonitor(node_id=0, manager=manager)


def blk(rdd, part, size=1.0):
    return Block(id=BlockId(rdd, part), size_mb=size)


def rdd_by_name(manager, name):
    for prof in manager.dag.profiles.values():
        if prof.rdd.name == name:
            return prof.rdd
    raise KeyError(name)


class TestEvictionOrder:
    def test_infinite_distance_first(self, manager, monitor):
        store = MemoryStore(100.0, monitor)
        links = rdd_by_name(manager, "parsed-links")
        store.put(blk(links.id, 0))
        store.put(blk(999, 0))  # unknown rdd: infinite distance
        order = list(monitor.eviction_order(store))
        assert order[0].rdd_id == 999

    def test_largest_distance_first_among_finite(self, manager, monitor):
        store = MemoryStore(100.0, monitor)
        links = rdd_by_name(manager, "parsed-links")   # referenced soon
        last = rdd_by_name(manager, "ranks-3")          # referenced at the end
        store.put(blk(links.id, 0))
        store.put(blk(last.id, 0))
        order = list(monitor.eviction_order(store))
        assert manager.distance(links.id) < manager.distance(last.id)
        assert order[0].rdd_id == last.id
        assert order[-1].rdd_id == links.id

    def test_tie_break_descending_partition(self, manager, monitor):
        store = MemoryStore(100.0, monitor)
        links = rdd_by_name(manager, "parsed-links")
        for p in range(3):
            store.put(blk(links.id, p))
        order = list(monitor.eviction_order(store))
        assert [b.partition for b in order] == [2, 1, 0]


class TestAdmission:
    def test_worse_block_refused(self, manager, monitor):
        store = MemoryStore(2.0, monitor)
        links = rdd_by_name(manager, "parsed-links")
        store.put(blk(links.id, 0))
        store.put(blk(links.id, 1))
        # Infinite-distance newcomer must not displace soon-needed blocks.
        assert not store.put(blk(999, 0)).stored

    def test_better_block_admitted(self, manager, monitor):
        store = MemoryStore(2.0, monitor)
        links = rdd_by_name(manager, "parsed-links")
        store.put(blk(999, 0))
        store.put(blk(999, 1))
        res = store.put(blk(links.id, 0))
        assert res.stored
        assert len(res.evicted) == 1


class TestTieBreakers:
    def test_invalid_rule_rejected(self, manager):
        with pytest.raises(ValueError, match="tie_breaker"):
            CacheMonitor(0, manager, tie_breaker="coinflip")

    def test_size_rule_evicts_largest_on_tie(self, manager):
        monitor = CacheMonitor(0, manager, tie_breaker="size")
        store = MemoryStore(100.0, monitor)
        links = rdd_by_name(manager, "parsed-links")
        store.put(Block(id=BlockId(links.id, 0), size_mb=1.0))
        store.put(Block(id=BlockId(links.id, 1), size_mb=9.0))
        order = list(monitor.eviction_order(store))
        assert order[0] == BlockId(links.id, 1)

    def test_creation_rule_evicts_youngest_rdd_on_tie(self, manager):
        monitor = CacheMonitor(0, manager, tie_breaker="creation")
        store = MemoryStore(100.0, monitor)
        # Two unknown (infinite-distance) RDDs: the younger goes first.
        store.put(blk(900, 0))
        store.put(blk(901, 0))
        order = list(monitor.eviction_order(store))
        assert order[0] == BlockId(901, 0)

    def test_distance_still_dominates_ties(self, manager):
        monitor = CacheMonitor(0, manager, tie_breaker="size")
        store = MemoryStore(100.0, monitor)
        links = rdd_by_name(manager, "parsed-links")  # referenced soon
        store.put(Block(id=BlockId(links.id, 0), size_mb=50.0))
        store.put(Block(id=BlockId(999, 0), size_mb=1.0))  # infinite dist
        order = list(monitor.eviction_order(store))
        assert order[0].rdd_id == 999


class TestStatusReport:
    def test_report_fields(self, manager, monitor):
        store = MemoryStore(10.0, monitor)
        store.put(blk(1, 0, size=4.0))
        status = monitor.report_cache_status(store, hit_ratio=0.5)
        assert status.node_id == 0
        assert status.used_mb == pytest.approx(4.0)
        assert status.free_mb == pytest.approx(6.0)
        assert status.hit_ratio == 0.5
        assert status.num_blocks == 1

    def test_idle_node_reports_none_hit_ratio(self, manager, monitor):
        # A node with no accesses yet has no ratio to report; None must
        # flow through rather than masquerading as 0.0 (a real miss rate).
        store = MemoryStore(10.0, monitor)
        status = monitor.report_cache_status(store, hit_ratio=None)
        assert status.hit_ratio is None
        assert status.num_blocks == 0


class TestTableView:
    def test_lookup_falls_back_to_live_manager_without_view(self, manager, monitor):
        links = rdd_by_name(manager, "parsed-links")
        assert monitor.lookup_distance(links.id) == manager.distance(links.id)

    def test_delivered_snapshot_overrides_live_state(self, manager, monitor):
        links = rdd_by_name(manager, "parsed-links")
        assert monitor.on_table_update(seq=1, distances={links.id: 42.0})
        assert monitor.lookup_distance(links.id) == 42.0
        # RDDs absent from the snapshot read as infinite, not live.
        assert monitor.lookup_distance(999999) == INFINITE

    def test_out_of_order_snapshot_rejected(self, manager, monitor):
        links = rdd_by_name(manager, "parsed-links")
        assert monitor.on_table_update(seq=5, distances={links.id: 5.0})
        assert not monitor.on_table_update(seq=3, distances={links.id: 3.0})
        assert monitor.lookup_distance(links.id) == 5.0


class TestDistanceLookup:
    def test_distance_delegates_to_manager(self, manager, monitor):
        links = rdd_by_name(manager, "parsed-links")
        assert monitor.manager.distance(links.id) == manager.distance(links.id)
        assert monitor.manager.distance(12345) == INFINITE
