"""Unit tests for the MrdScheme adapter (variants and wiring)."""

import pytest

from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.core.cache_monitor import CacheMonitor
from repro.core.policy import MrdScheme, PrefetchAwareLruPolicy
from repro.dag.dag_builder import build_dag
from tests.conftest import make_linear_app


@pytest.fixture
def dag():
    return build_dag(make_linear_app(num_jobs=3))


class TestVariantNames:
    def test_full(self):
        assert MrdScheme().name == "MRD"

    def test_evict_only(self):
        assert MrdScheme(prefetch=False).name == "MRD-evict"

    def test_prefetch_only(self):
        assert MrdScheme(evict=False).name == "MRD-prefetch"

    def test_job_metric_suffix(self):
        assert MrdScheme(metric="job").name == "MRD-jobdist"

    def test_adhoc_suffix(self):
        assert MrdScheme(mode="adhoc").name == "MRD-adhoc"

    def test_both_disabled_rejected(self):
        with pytest.raises(ValueError):
            MrdScheme(evict=False, prefetch=False)


class TestWiring:
    def test_policy_factory_requires_prepare(self):
        scheme = MrdScheme()
        with pytest.raises(AssertionError):
            scheme.policy_factory(0)

    def test_evicting_variant_uses_cache_monitor(self, dag):
        scheme = MrdScheme()
        scheme.prepare(dag)
        assert isinstance(scheme.policy_factory(0), CacheMonitor)

    def test_prefetch_only_uses_hybrid_lru(self, dag):
        scheme = MrdScheme(evict=False)
        scheme.prepare(dag)
        assert isinstance(scheme.policy_factory(0), PrefetchAwareLruPolicy)

    def test_evict_only_strips_prefetch_orders(self, dag):
        scheme = MrdScheme(prefetch=False)
        scheme.prepare(dag)
        assert scheme.mrd_config.max_prefetch_per_node == 0

    def test_prefetch_only_strips_purges(self, dag):
        scheme = MrdScheme(evict=False)
        scheme.prepare(dag)
        cluster = build_cluster(
            ClusterConfig(num_nodes=2, cache_mb_per_node=32.0), scheme.policy_factory
        )
        scheme.on_job_submit(0)
        rdd = next(iter(dag.profiles.values())).rdd
        scheme.on_block_created(rdd.id)
        scheme.manager.table._refs[rdd.id].clear()
        orders = scheme.on_stage_start(0, cluster)
        assert orders.purge_rdds == []

    def test_eager_purge_disabled_without_evict(self, dag):
        scheme = MrdScheme(evict=False)
        assert not scheme.mrd_config.eager_purge
