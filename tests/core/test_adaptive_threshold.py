"""Tests for the adaptive prefetch-threshold controller (future work)."""

import pytest

from repro.core.manager import AdaptiveThresholdController
from repro.core.policy import MrdScheme
from repro.dag.dag_builder import build_dag
from repro.simulator.engine import simulate
from tests.conftest import make_iterative_app
from tests.simulator.test_engine import small_config


class TestController:
    def test_initial_value(self):
        c = AdaptiveThresholdController(initial=0.25)
        assert c.value == 0.25

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdController(initial=0.95, hi=0.9)

    def test_high_waste_raises_threshold(self):
        c = AdaptiveThresholdController(initial=0.25)
        c.update(total_issued=10, total_used=2)  # 80 % waste
        assert c.value > 0.25

    def test_low_waste_lowers_threshold(self):
        c = AdaptiveThresholdController(initial=0.25)
        c.update(total_issued=10, total_used=10)  # 0 % waste
        assert c.value < 0.25

    def test_moderate_waste_holds(self):
        c = AdaptiveThresholdController(initial=0.25)
        c.update(total_issued=10, total_used=7)  # 30 % waste: in the band
        assert c.value == 0.25

    def test_no_new_prefetches_holds(self):
        c = AdaptiveThresholdController(initial=0.25)
        c.update(0, 0)
        assert c.value == 0.25

    def test_deltas_are_incremental(self):
        c = AdaptiveThresholdController(initial=0.25)
        c.update(total_issued=10, total_used=10)   # perfect round
        v = c.value
        c.update(total_issued=10, total_used=10)   # nothing new happened
        assert c.value == v

    def test_bounds_respected(self):
        c = AdaptiveThresholdController(initial=0.25, lo=0.1, hi=0.5)
        for _ in range(20):
            c.update(c._last_issued + 10, c._last_used)  # all waste
        assert c.value == 0.5
        for _ in range(40):
            c.update(c._last_issued + 10, c._last_used + 10)  # all used
        assert c.value == pytest.approx(0.1)


class TestAdaptiveScheme:
    def test_runs_and_tracks(self):
        dag = build_dag(make_iterative_app(iterations=5))
        cfg = small_config(cache_mb=20.0)
        scheme = MrdScheme(adaptive_threshold=True)
        metrics = simulate(dag, cfg, scheme)
        assert metrics.jct > 0
        assert scheme.manager.threshold_controller is not None

    def test_fixed_mode_has_no_controller(self):
        dag = build_dag(make_iterative_app(iterations=3))
        scheme = MrdScheme()
        scheme.prepare(dag)
        assert scheme.manager.threshold_controller is None

    def test_adaptive_never_catastrophic(self):
        dag = build_dag(make_iterative_app(iterations=5))
        cfg = small_config(cache_mb=20.0)
        fixed = simulate(dag, cfg, MrdScheme())
        adaptive = simulate(dag, cfg, MrdScheme(adaptive_threshold=True))
        assert adaptive.jct <= fixed.jct * 1.25
