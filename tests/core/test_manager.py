"""Unit tests for the MRDmanager: purge and prefetch order selection."""

import pytest

from repro.cluster.block import Block, BlockId
from repro.cluster.cluster import ClusterConfig, build_cluster
from repro.core.app_profiler import AppProfiler
from repro.core.manager import MrdConfig, MrdManager
from repro.dag.dag_builder import build_dag
from tests.conftest import make_linear_app


@pytest.fixture
def dag():
    return build_dag(make_linear_app(num_jobs=3))


def make_manager(dag, **config):
    profiler = AppProfiler(dag, mode=config.pop("mode", "recurring"))
    return MrdManager(dag, profiler, MrdConfig(**config))


def make_cluster(manager, nodes=2, cache=64.0):
    from repro.core.cache_monitor import CacheMonitor

    config = ClusterConfig(num_nodes=nodes, slots_per_node=2, cache_mb_per_node=cache)
    return build_cluster(config, lambda i: CacheMonitor(i, manager))


def points_rdd(dag):
    (prof,) = dag.profiles.values()
    return prof.rdd


class TestConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            MrdConfig(prefetch_threshold=1.5)

    def test_negative_prefetch_bound(self):
        with pytest.raises(ValueError):
            MrdConfig(max_prefetch_per_node=-1)


class TestPurgeSelection:
    def test_no_purge_while_references_remain(self, dag):
        mgr = make_manager(dag)
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.on_block_created(rdd.id)
        plan = mgr.on_stage_start(0, cluster)
        assert plan.purge_rdds == []

    def test_purge_after_last_reference(self, dag):
        mgr = make_manager(dag)
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.on_block_created(rdd.id)
        last = dag.num_active_stages - 1
        mgr.on_stage_start(last, cluster)
        # Move past the final read: simulate by advancing the table.
        mgr.table.advance(last, dag.job_of_seq(last))
        mgr.table._refs[rdd.id].clear()
        plan2 = mgr.on_stage_start(last, cluster)
        assert rdd.id in plan2.purge_rdds

    def test_purge_issued_once(self, dag):
        mgr = make_manager(dag)
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.on_block_created(rdd.id)
        mgr.table._refs[rdd.id].clear()
        first = mgr.on_stage_start(0, cluster)
        second = mgr.on_stage_start(0, cluster)
        assert first.purge_rdds == [rdd.id]
        assert second.purge_rdds == []

    def test_unmaterialized_rdds_never_purged(self, dag):
        mgr = make_manager(dag)
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.table._refs[rdd.id].clear()
        plan = mgr.on_stage_start(0, cluster)
        assert plan.purge_rdds == []

    def test_eager_purge_disabled(self, dag):
        mgr = make_manager(dag, eager_purge=False)
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.on_block_created(rdd.id)
        mgr.table._refs[rdd.id].clear()
        assert mgr.on_stage_start(0, cluster).purge_rdds == []


class TestPrefetchSelection:
    def _prepare(self, dag, cache=64.0, **cfg):
        mgr = make_manager(dag, **cfg)
        cluster = make_cluster(mgr, cache=cache)
        rdd = points_rdd(dag)
        mgr.on_block_created(rdd.id)
        # Blocks exist on disk only (evicted / never admitted).
        for p in range(rdd.num_partitions):
            bid = BlockId(rdd.id, p)
            cluster.master.manager_for(bid).node.disk.put(
                Block(id=bid, size_mb=rdd.partition_size_mb)
            )
        return mgr, cluster, rdd

    def test_prefetches_disk_resident_blocks(self, dag):
        mgr, cluster, rdd = self._prepare(dag)
        plan = mgr.on_stage_start(0, cluster)
        assert plan.prefetches
        assert all(b.id.rdd_id == rdd.id for b in plan.prefetches)

    def test_respects_per_node_bound(self, dag):
        mgr, cluster, rdd = self._prepare(dag, max_prefetch_per_node=1)
        plan = mgr.on_stage_start(0, cluster)
        per_node = {}
        for b in plan.prefetches:
            node = cluster.master.home_node_id(b.id)
            per_node[node] = per_node.get(node, 0) + 1
        assert all(count <= 1 for count in per_node.values())

    def test_zero_bound_disables_prefetch(self, dag):
        mgr, cluster, rdd = self._prepare(dag, max_prefetch_per_node=0)
        assert mgr.on_stage_start(0, cluster).prefetches == []

    def test_in_memory_blocks_not_prefetched(self, dag):
        mgr, cluster, rdd = self._prepare(dag)
        for p in range(rdd.num_partitions):
            bid = BlockId(rdd.id, p)
            cluster.master.manager_for(bid).node.memory.put(
                Block(id=bid, size_mb=rdd.partition_size_mb)
            )
        assert mgr.on_stage_start(0, cluster).prefetches == []

    def test_infinite_distance_blocks_not_prefetched(self, dag):
        mgr, cluster, rdd = self._prepare(dag)
        mgr.table._refs[rdd.id].clear()
        assert mgr.on_stage_start(0, cluster).prefetches == []

    def test_prefetch_orders_nearest_distance_first(self):
        """Per node, orders come out lowest-distance first (Algorithm 1)."""
        from repro.dag.context import SparkApplication, SparkContext

        ctx = SparkContext("pf")
        near = ctx.text_file("near", 8.0, 2).map(name="near").cache()
        far = ctx.text_file("far", 8.0, 2).map(name="far").cache()
        near.union(far).count()                                   # job 0
        near.map_partitions(name="rn").collect()                  # job 1 (soon)
        ctx.parallelize("pad", 1.0, 2).count()                    # job 2
        far.map_partitions(name="rf").collect()                   # job 3 (later)
        dag = build_dag(SparkApplication(ctx))
        mgr = make_manager(dag)
        cluster = make_cluster(mgr, nodes=1, cache=64.0)
        for rdd in (near, far):
            mgr.on_block_created(rdd.id)
            for p in range(rdd.num_partitions):
                bid = BlockId(rdd.id, p)
                cluster.master.manager_for(bid).node.disk.put(
                    Block(id=bid, size_mb=rdd.partition_size_mb)
                )
        plan = mgr.on_stage_start(0, cluster)
        rdd_order = [b.id.rdd_id for b in plan.prefetches]
        assert rdd_order.index(near.id) < rdd_order.index(far.id)

    def test_full_cache_blocks_guarded_prefetch(self, dag):
        """With a full cache of *more urgent* blocks, no prefetch fires."""
        mgr, cluster, rdd = self._prepare(dag, cache=8.0)
        # Fill every node with same-RDD blocks (equal urgency) so the
        # guarded force path refuses (incoming not strictly better).
        for node in cluster.nodes:
            node.memory.put(Block(id=BlockId(rdd.id, 100 + node.node_id), size_mb=8.0))
        plan = mgr.on_stage_start(0, cluster)
        assert plan.prefetches == []


class TestAdhocResurrection:
    def test_new_job_references_clear_purged_mark(self, dag):
        mgr = make_manager(dag, mode="adhoc")
        cluster = make_cluster(mgr)
        rdd = points_rdd(dag)
        mgr.on_job_submit(0)
        mgr.on_block_created(rdd.id)
        plan = mgr.on_stage_start(0, cluster)
        assert rdd.id in plan.purge_rdds  # no refs visible in job 0
        mgr.on_job_submit(1)  # job 1 reads points → resurrect
        assert mgr.table.distance(rdd.id) != float("inf")
        mgr.table._refs[rdd.id].clear()
        plan2 = mgr.on_stage_start(1, cluster)
        assert rdd.id in plan2.purge_rdds  # purgable again after new info
